"""UTF-8-style variable-length integer encoding (Vector scheme storage).

The vector labelling scheme [27] stores its integer components with UTF-8
so that code boundaries need no length field — the same separator trick
QED plays with the reserved ``00`` unit.  Section 4 of the survey points
out that a single UTF-8 instance tops out at 2^21, leaving open how larger
components are stored.  We resolve that (and document the substitution in
DESIGN.md) with an explicit extension: values at or above 2^21 are written
as a one-byte ``0xF8 | unit_count`` header followed by big-endian 4-byte
units of 21 payload bits each.  Small-value sizes match UTF-8 exactly:
1 byte below 2^7, 2 below 2^11, 3 below 2^16, 4 below 2^21.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import InvalidLabelError

#: (exclusive upper bound, bytes) ladder copied from UTF-8 / RFC 3629.
_UTF8_LADDER: List[Tuple[int, int]] = [
    (1 << 7, 1),
    (1 << 11, 2),
    (1 << 16, 3),
    (1 << 21, 4),
]

#: Payload bits carried by one 4-byte unit in chained (extended) mode.
_UNIT_PAYLOAD_BITS = 21
_UNIT_PAYLOAD_MASK = (1 << _UNIT_PAYLOAD_BITS) - 1
#: Chained mode supports at most 7 units = 147 payload bits, far beyond
#: any component the experiments produce; the bound is checked explicitly.
_MAX_CHAIN_UNITS = 7


def _chain_units(value: int) -> int:
    units = 1
    remaining = value >> _UNIT_PAYLOAD_BITS
    while remaining:
        units += 1
        remaining >>= _UNIT_PAYLOAD_BITS
    return units


def encoded_size_bytes(value: int) -> int:
    """Bytes needed to store ``value`` (the storage-cost model)."""
    if value < 0:
        raise InvalidLabelError("varint values must be non-negative")
    for bound, size in _UTF8_LADDER:
        if value < bound:
            return size
    return 1 + 4 * _chain_units(value)


def encoded_size_bits(value: int) -> int:
    """Bit-denominated size (what the growth experiments accumulate)."""
    return 8 * encoded_size_bytes(value)


def _pack_unit(payload: int, out: bytearray) -> None:
    """Write one 4-byte UTF-8-shaped unit carrying 21 payload bits."""
    out.append(0xF0 | ((payload >> 18) & 0x07))
    out.append(0x80 | ((payload >> 12) & 0x3F))
    out.append(0x80 | ((payload >> 6) & 0x3F))
    out.append(0x80 | (payload & 0x3F))


def encode(value: int) -> bytes:
    """Encode ``value``; :func:`decode` inverts this.

    The encoding is a real codec, not just a size model, because
    Definition 2 requires full reconstruction from stored labels.
    """
    if value < 0:
        raise InvalidLabelError("varint values must be non-negative")
    out = bytearray()
    if value < (1 << 7):
        out.append(value)
    elif value < (1 << 11):
        out.append(0xC0 | (value >> 6))
        out.append(0x80 | (value & 0x3F))
    elif value < (1 << 16):
        out.append(0xE0 | (value >> 12))
        out.append(0x80 | ((value >> 6) & 0x3F))
        out.append(0x80 | (value & 0x3F))
    elif value < (1 << 21):
        _pack_unit(value, out)
    else:
        units = _chain_units(value)
        if units > _MAX_CHAIN_UNITS:
            raise InvalidLabelError(f"value {value} exceeds the chained varint range")
        out.append(0xF8 | units)
        for index in range(units - 1, -1, -1):
            _pack_unit((value >> (index * _UNIT_PAYLOAD_BITS)) & _UNIT_PAYLOAD_MASK, out)
    return bytes(out)


def decode(data: bytes) -> Tuple[int, int]:
    """Decode one varint from the head of ``data``.

    Returns ``(value, bytes_consumed)``.  Raises on malformed input.
    """
    if not data:
        raise InvalidLabelError("cannot decode an empty varint")
    lead = data[0]
    if lead < 0x80:
        return lead, 1
    if lead >> 5 == 0b110:
        return _decode_multibyte(data, 2, lead & 0x1F)
    if lead >> 4 == 0b1110:
        return _decode_multibyte(data, 3, lead & 0x0F)
    if lead >> 3 == 0b11110:
        return _decode_multibyte(data, 4, lead & 0x07)
    if lead >> 3 == 0b11111:
        units = lead & 0x07
        if units == 0:
            raise InvalidLabelError("chained varint with zero units")
        value = 0
        consumed = 1
        for _ in range(units):
            if consumed >= len(data):
                raise InvalidLabelError("truncated chained varint")
            unit, used = _decode_multibyte(
                data[consumed:], 4, data[consumed] & 0x07
            )
            value = (value << _UNIT_PAYLOAD_BITS) | unit
            consumed += used
        return value, consumed
    raise InvalidLabelError(f"bad varint lead byte {lead:#x}")


def _decode_multibyte(data: bytes, size: int, value: int) -> Tuple[int, int]:
    if len(data) < size:
        raise InvalidLabelError("truncated varint")
    for offset in range(1, size):
        byte = data[offset]
        if byte >> 6 != 0b10:
            raise InvalidLabelError(f"bad varint continuation byte {byte:#x}")
        value = (value << 6) | (byte & 0x3F)
    return value, size


def single_unit_limit() -> int:
    """The 2^21 bound the survey quotes for one UTF-8 instance."""
    return 1 << 21
