"""Label algebra: binary strings, quaternary codes, varints, ordered strings."""

from repro.labels import bitstring, ordered_strings, quaternary, varint

__all__ = ["bitstring", "ordered_strings", "quaternary", "varint"]
