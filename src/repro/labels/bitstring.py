"""Binary-string label algebra (ImprovedBinary [13] and CDBS [15]).

ImprovedBinary positional identifiers are binary strings that always end
in ``1`` — the invariant that guarantees a middle label can always be
computed (section 3.1.2 of the survey).  This module implements the three
published insertion rules and the ``AssignMiddleSelfLabel`` computation,
plus the fraction interpretation used by tests to check that lexicographic
order on these strings is a faithful total order.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List

from repro.errors import InvalidLabelError
from repro.labels.ordered_strings import (
    shortest_string_between,
    validate_alphabet_string,
)

BINARY_ALPHABET = ("0", "1")


def validate_code(code: str) -> None:
    """A valid ImprovedBinary positional identifier: bits, ending in 1."""
    validate_alphabet_string(code, BINARY_ALPHABET, "binary code")
    if not code:
        raise InvalidLabelError("binary codes must be non-empty")
    if code[-1] != "1":
        raise InvalidLabelError(f"binary code {code!r} must end in 1")


def code_to_fraction(code: str) -> Fraction:
    """Interpret a bit string as the binary fraction ``0.code``.

    For codes ending in 1 this mapping is an order isomorphism with
    lexicographic string order, which is what makes the scheme sound; the
    property tests assert it.
    """
    value = Fraction(0)
    weight = Fraction(1, 2)
    for bit in code:
        if bit == "1":
            value += weight
        # Exact rational halving for order verification — not label
        # assignment arithmetic, and no floating point involved.
        weight /= 2  # repro: noqa[REP001]
    return value


def middle_code(left: str, right: str) -> str:
    """``AssignMiddleSelfLabel`` — a code strictly between two codes.

    The published rule (Li & Ling [13]): when the left code is at least as
    long, append ``1`` to it; otherwise change the right code's final ``1``
    to ``01``.  Both cases preserve the ends-in-1 invariant.  Reproduces
    the Figure 6 labels (``middle_code("01", "011") == "0101"`` and so on).
    """
    validate_code(left)
    validate_code(right)
    if not left < right:
        raise InvalidLabelError(f"codes out of order: {left!r} !< {right!r}")
    if len(left) >= len(right):
        return left + "1"
    return right[:-1] + "01"


def before_first_code(first: str) -> str:
    """Insert before the first sibling: change the trailing ``1`` to ``01``.

    Figure 6 example: the first child ``01`` yields ``001``.
    """
    validate_code(first)
    return first[:-1] + "01"


def after_last_code(last: str) -> str:
    """Insert after the last sibling: concatenate an extra ``1``.

    Figure 6 example: the last child ``01`` yields ``011``.
    """
    validate_code(last)
    return last + "1"


def compact_code_between(left: str, right: str) -> str:
    """CDBS-style insertion: the *shortest* valid code strictly between.

    This is the compactness improvement of CDBS over ImprovedBinary's
    one-sided rules; under skewed insertion it grows like the binary
    representation of the insertion count instead of one bit per insert.
    ``left`` may be empty and ``right`` may be ``None`` for the interval
    ends.
    """
    if left:
        validate_code(left)
    if right is not None:
        validate_code(right)
    return shortest_string_between(
        left, right, BINARY_ALPHABET, valid_last=("1",)
    )


def initial_codes(count: int) -> List[str]:
    """ImprovedBinary bulk assignment for ``count`` siblings.

    Reproduces the published recursive Labelling algorithm *results* in
    closed form for the callers that need only the code sequence: the
    leftmost sibling gets ``01``, the rightmost ``011``, and middles are
    filled by ``AssignMiddleSelfLabel`` on the ``((1 + n) / 2)``-th
    position.  The scheme implementation performs the actual recursion
    (with instrumentation); this helper is the reference the tests compare
    it against.
    """
    if count < 0:
        raise InvalidLabelError("count must be non-negative")
    if count == 0:
        return []
    if count == 1:
        return ["01"]
    codes = [""] * count
    codes[0] = "01"
    codes[-1] = "011"

    def fill(low: int, high: int) -> None:
        # Assign the middle of the open index interval (low, high), then
        # recurse into both halves, exactly as the published algorithm.
        if high - low <= 1:
            return
        # Reference implementation exercised by tests only; the registry
        # scheme (ImprovedBinaryScheme) instruments its own recursion.
        middle = (low + 1 + high + 1) // 2 - 1  # ((1 + n) / 2)-th, 0-based  # repro: noqa[REP001]
        codes[middle] = middle_code(codes[low], codes[high])
        fill(low, middle)
        fill(middle, high)

    fill(0, count - 1)
    return codes


def compact_initial_codes(count: int) -> List[str]:
    """CDBS bulk assignment: ``count`` short ordered codes ending in 1."""
    from repro.labels.ordered_strings import evenly_spaced_codes

    return evenly_spaced_codes(count, BINARY_ALPHABET, valid_last=("1",))


def code_size_bits(code: str) -> int:
    """Storage size of one code: one bit per symbol."""
    return len(code)
