"""Bit-granular readers and writers for the label stream codecs.

Section 4's storage argument is about *bits*: fixed fields, length
fields, reserved separator units.  The codecs in
:mod:`repro.encoding.codec` make those layouts real, and they need a
bit-level I/O layer: ``BitWriter`` packs most-significant-bit-first into
bytes, ``BitReader`` replays them, and both track the exact bit count so
tests can assert the codecs match each scheme's declared
``label_size_bits`` model bit for bit.
"""

from __future__ import annotations

from typing import List

from repro.errors import InvalidLabelError


class BitWriter:
    """Accumulates bits MSB-first; pads the final byte with zeros."""

    def __init__(self):
        self._bits: List[int] = []

    def __len__(self) -> int:
        return len(self._bits)

    @property
    def bit_length(self) -> int:
        return len(self._bits)

    def write_bit(self, bit: int) -> None:
        self._bits.append(1 if bit else 0)

    def write_bits(self, value: int, width: int) -> None:
        """Write ``width`` bits of ``value``, most significant first."""
        if width < 0:
            raise InvalidLabelError("bit width must be non-negative")
        if value < 0 or value >= (1 << width):
            raise InvalidLabelError(
                f"value {value} does not fit in {width} bits"
            )
        for position in range(width - 1, -1, -1):
            self._bits.append((value >> position) & 1)

    def write_bitstring(self, bits: str) -> None:
        """Write a string of '0'/'1' characters verbatim."""
        for char in bits:
            if char not in "01":
                raise InvalidLabelError(f"not a bit: {char!r}")
            self._bits.append(int(char))

    def write_bytes(self, data: bytes) -> None:
        for byte in data:
            self.write_bits(byte, 8)

    def getvalue(self) -> bytes:
        out = bytearray()
        for start in range(0, len(self._bits), 8):
            chunk = self._bits[start : start + 8]
            chunk += [0] * (8 - len(chunk))
            byte = 0
            for bit in chunk:
                byte = (byte << 1) | bit
            out.append(byte)
        return bytes(out)


class BitReader:
    """Replays bits MSB-first from bytes."""

    def __init__(self, data: bytes, bit_length: int = None):
        self._data = data
        self._position = 0
        self._limit = len(data) * 8 if bit_length is None else bit_length
        if self._limit > len(data) * 8:
            raise InvalidLabelError("bit_length exceeds the data")

    @property
    def position(self) -> int:
        return self._position

    @property
    def remaining(self) -> int:
        return self._limit - self._position

    @property
    def exhausted(self) -> bool:
        return self._position >= self._limit

    def read_bit(self) -> int:
        if self.exhausted:
            raise InvalidLabelError("bit stream exhausted")
        byte = self._data[self._position >> 3]
        bit = (byte >> (7 - (self._position & 7))) & 1
        self._position += 1
        return bit

    def read_bits(self, width: int) -> int:
        value = 0
        for _ in range(width):
            value = (value << 1) | self.read_bit()
        return value

    def read_bitstring(self, width: int) -> str:
        return "".join(str(self.read_bit()) for _ in range(width))

    def read_bytes(self, count: int) -> bytes:
        return bytes(self.read_bits(8) for _ in range(count))

    def peek_bits(self, width: int) -> int:
        """Read ahead without consuming (used by prefix-code decoders)."""
        saved = self._position
        try:
            return self.read_bits(width)
        finally:
            self._position = saved
