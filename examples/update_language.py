"""The declarative update language and its static safety analyzer.

The paper's section 5 argues that an update mechanism should make its
costs *predictable before anything runs*.  This example takes one
bibliography document and an update program through the whole
pipeline:

1. parse the program into a typed AST,
2. statically check it against standing queries — `independent`
   verdicts are proofs, `may-conflict` is the conservative fallback,
3. run the safe program through one batch (FLUX-style sequential
   semantics, one rollback scope) and compare the analyzer's relabel
   prediction with what actually happened.

    python examples/update_language.py
"""

from repro import LabeledDocument, make_scheme, parse
from repro.axes.xpath import xpath
from repro.ulang import check_program, parse_program, run_program

LIBRARY = """
<library>
  <section genre="fiction">
    <book year="1965"><title>Dune</title><price>10</price></book>
    <book year="1984"><title>Neuromancer</title><price>12</price></book>
  </section>
  <section genre="reference">
    <book year="2004"><title>XPath 2.0</title><price>40</price></book>
  </section>
</library>
"""

# Absolute paths, deliberately: the chain domain can prove a lot more
# about /library/section/book/title than about a bare //title (which
# may-conflicts with almost any structural edit — nothing rules out a
# title nested under the edited region without schema knowledge).
STANDING_QUERIES = [
    "/library/section/book/title",   # the catalogue listing
    "/library/section/@genre",       # the navigation sidebar
]

PROGRAM = """
# Quarterly catalogue refresh:
rename //price as list-price;
replace value of //list-price with '0';
insert <badge kind='sale'/> into //book[@year='1984'];
"""

RISKY = "delete //section[@genre='fiction'];"


def describe(report):
    for verdict in report.verdicts:
        state = "independent " if verdict.independent else "may-conflict"
        print(f"  {state}  {verdict.query}")
        if not verdict.independent:
            print(f"                ({verdict.evidence})")


def main():
    ldoc = LabeledDocument(parse(LIBRARY), make_scheme("ordpath"))

    print("=== static check: the refresh program ===")
    program = parse_program(PROGRAM)
    report = check_program(program, queries=STANDING_QUERIES, ldoc=ldoc)
    describe(report)
    print(f"  exit code {report.exit_code} — badges and prices don't touch "
          f"titles or genres\n")

    print("=== static check: the risky program ===")
    risky = check_program(RISKY, queries=STANDING_QUERIES, ldoc=ldoc)
    describe(risky)
    print(f"  exit code {risky.exit_code} — the delete would gut the "
          f"catalogue listing, so CI refuses it\n")

    print("=== running the safe program ===")
    result, plan = run_program(ldoc, program, collect_plan=True)
    print(f"  applied {result.operations} operation(s), "
          f"{result.relabeled_nodes} node(s) relabeled "
          f"(predicted extent: "
          f"{report.prediction['predicted_relabel_extent']})")
    titles = [node.text_value()
              for node in xpath(ldoc, "/library/section/book/title")]
    print(f"  catalogue titles afterwards: {titles}  (unchanged, as proven)")
    badges = xpath(ldoc, "//book[@year='1984']/badge")
    print(f"  new badges: {[b.attribute('kind').value for b in badges]}")


if __name__ == "__main__":
    main()
