"""Use case from section 5.2: very large documents and overflow.

"An XML repository that is expected to consume very large documents on
a regular basis may consider a labelling scheme that is not subject to
the overflow problem."

This example plays a feed-ingestion scenario: a large document is bulk
loaded, then a hot spot receives a continuous stream of insertions (new
entries always land at the top of one section).  Schemes with fixed
storage fields (DLN here, deliberately configured tight) hit the
section 4 overflow and must relabel the whole store mid-ingest; CDQS —
the survey's "most generic" scheme — absorbs the same stream untouched.

    python examples/bulk_loading.py
"""

import time

from repro import LabeledDocument, make_scheme
from repro.xmlmodel.generator import random_document

BULK_NODES = 800
HOT_INSERTS = 300


def ingest(scheme_name, **scheme_config):
    document = random_document(BULK_NODES, seed=2024)
    started = time.perf_counter()
    ldoc = LabeledDocument(document, make_scheme(scheme_name, **scheme_config))
    bulk_ms = (time.perf_counter() - started) * 1000

    hot_section = ldoc.document.root.element_children()[0]
    started = time.perf_counter()
    for index in range(HOT_INSERTS):
        ldoc.prepend_child(hot_section, f"entry{index}")
    stream_ms = (time.perf_counter() - started) * 1000
    ldoc.verify_order()
    return ldoc, bulk_ms, stream_ms


# ----------------------------------------------------------------------
# Bulk loading, fast path
# ----------------------------------------------------------------------
#
# Even overflow-prone schemes can ingest a hot-spot stream cheaply when
# the insertions arrive together: an UpdateBatch applies the structural
# changes eagerly but defers any labelling that would relabel existing
# nodes, then closes the batch with a *single* consolidated pass.  The
# per-op path below pays one relabel event per colliding insert; the
# batched path pays at most one for the whole stream.

def ingest_batched(scheme_name, **scheme_config):
    document = random_document(BULK_NODES, seed=2024)
    ldoc = LabeledDocument(document, make_scheme(scheme_name, **scheme_config))
    hot_section = ldoc.document.root.element_children()[0]
    started = time.perf_counter()
    with ldoc.batch() as batch:
        for index in range(HOT_INSERTS):
            batch.prepend_child(hot_section, f"entry{index}")
    stream_ms = (time.perf_counter() - started) * 1000
    ldoc.verify_order()
    return ldoc, stream_ms, ldoc.last_batch_result


def fast_path_report():
    print("Bulk loading, fast path: the same hot-spot stream through "
          "UpdateBatch\n")
    for scheme_name, config in [
        ("cdqs", {}),
        ("dln", {"subvalue_bits": 8, "max_sublevels": 6}),
        ("prepost", {}),
    ]:
        ldoc, stream_ms, result = ingest_batched(scheme_name, **config)
        print(f"=== {scheme_name} {config or ''} ===")
        print(f"  batched stream: {stream_ms:6.1f} ms")
        print(f"  fast-path labels: "
              f"{result.labels_assigned - result.deferred_labels}, "
              f"deferred: {result.deferred_labels}")
        print(f"  relabel passes: {result.relabel_passes} "
              f"(vs {result.relabels_avoided + result.relabel_passes} "
              "relabels under per-op application)")
        print(f"  relabel events in the log: {ldoc.log.relabel_events}\n")


def main():
    print(f"Bulk load {BULK_NODES} nodes, then stream {HOT_INSERTS} "
          "insertions into one hot spot\n")
    scenarios = [
        ("cdqs", {}),
        ("dln", {"subvalue_bits": 8, "max_sublevels": 6}),
        ("xrel", {"gap": 16}),
    ]
    for scheme_name, config in scenarios:
        ldoc, bulk_ms, stream_ms = ingest(scheme_name, **config)
        print(f"=== {scheme_name} {config or ''} ===")
        print(f"  bulk labelling: {bulk_ms:7.1f} ms")
        print(f"  hot-spot stream: {stream_ms:6.1f} ms")
        print(f"  relabel events: {ldoc.log.relabel_events}")
        print(f"  nodes relabelled mid-ingest: {ldoc.log.relabeled_nodes}")
        print(f"  overflow events: {ldoc.log.overflow_events}")
        if ldoc.log.relabel_events == 0:
            print("  -> overflow-free: ingestion never paused\n")
        else:
            print("  -> the section 4 overflow problem: the whole store "
                  "was relabelled during ingestion\n")
    fast_path_report()


if __name__ == "__main__":
    main()
