"""Quickstart: label a document, update it, query it — no relabelling.

Runs the paper's sample document (Figure 1a) through the full public
API with the QED scheme, the survey's exemplar of an overflow-free
dynamic labelling scheme.

    python examples/quickstart.py
"""

from repro import LabeledDocument, make_scheme, parse, serialize
from repro.axes.xpath import xpath
from repro.data.sample import SAMPLE_XML
from repro.encoding.table import EncodingTable


def main():
    # 1. Parse the paper's sample file into the tree representation the
    #    XPath data model (and every labelling scheme) works on.
    document = parse(SAMPLE_XML)
    print("Parsed the Figure 1(a) sample document:",
          document.labeled_size(), "labelled nodes\n")

    # 2. Attach a dynamic labelling scheme.  QED codes can absorb any
    #    number of insertions anywhere without touching existing labels.
    ldoc = LabeledDocument(document, make_scheme("qed"))
    for node in document.labeled_nodes():
        print(f"  {ldoc.format_label(node):12s} <{node.name}>")

    # 3. Structural updates: a new author before the existing one, a new
    #    chapter at the end.  Watch the relabel counter stay at zero.
    author = next(n for n in document.labeled_nodes() if n.name == "author")
    ldoc.insert_before(author, "translator")
    ldoc.append_child(document.root, "appendix")
    print("\nAfter two insertions:")
    print("  relabelled nodes:", ldoc.log.relabeled_nodes)
    ldoc.verify_order()  # labels still sort into document order

    # 4. Query through the mini XPath — the axes are answered from the
    #    labels alone for a prefix scheme like QED.
    print("\nXPath queries:")
    print("  //editor/*        ->",
          [n.name for n in xpath(ldoc, "//editor/*")])
    print("  //edition[@year='2004'] ->",
          [n.name for n in xpath(ldoc, "//edition[@year='2004']")])
    print("  //name/ancestor::* ->",
          [n.name for n in xpath(ldoc, "//name/ancestor::*")])

    # 5. The encoding scheme (Definition 2): a node table that fully
    #    reconstructs the textual document.
    table = EncodingTable.from_labeled_document(ldoc)
    print("\nEncoding table (first 4 rows):")
    for line in table.render().splitlines()[:5]:
        print(" ", line)
    rebuilt = table.reconstruct()
    print("\nReconstructed document:")
    print(" ", serialize(rebuilt)[:72], "...")


if __name__ == "__main__":
    main()
