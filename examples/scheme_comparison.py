"""Compare all twelve surveyed schemes on one workload, side by side.

Recreates in miniature what the paper's evaluation framework does:
label the same document with every Figure 7 scheme, push the same
update stream through each, and tabulate storage, relabelling and the
relationships each scheme's labels can decide.

    python examples/scheme_comparison.py
"""

from repro import LabeledDocument, make_scheme
from repro.axes.relationships import supported_relationships
from repro.data.sample import sample_document
from repro.schemes.registry import FIGURE7_ORDER
from repro.updates.workloads import random_insertions, skewed_insertions
from repro.xmlmodel.generator import random_document


def main():
    header = (f"{'scheme':18s} {'bits/label':>10s} {'max label':>9s} "
              f"{'relabelled':>10s} {'overflow':>8s} {'label-decidable':>24s}")
    print("Workload: 60 random + 60 skewed insertions on a 300-node document")
    print(header)
    print("-" * len(header))

    for name in FIGURE7_ORDER:
        document = random_document(300, seed=123)
        ldoc = LabeledDocument(document, make_scheme(name),
                               on_collision="record")
        random_insertions(ldoc, 60, seed=7)
        skewed_insertions(ldoc, 60)

        bits = ldoc.total_label_bits() / len(ldoc.labels)
        relationships = supported_relationships(
            make_scheme(name), sample_document()
        )
        decidable = ",".join(sorted(
            rel.value.split("-")[0] for rel in relationships
        )) or "none"
        print(f"{name:18s} {bits:10.1f} {ldoc.max_label_bits():9d} "
              f"{ldoc.log.relabeled_nodes:10d} {ldoc.log.overflow_events:8d} "
              f"{decidable:>24s}")

    print("\nReading the table against Figure 7:")
    print(" * zero relabelled nodes ............ Persistent Labels = F")
    print(" * zero overflow events under skew .. Overflow Problem = F")
    print(" * ancestor+parent+sibling .......... XPath Evaluations = F")


if __name__ == "__main__":
    main()
