"""XPath over labels: the section 2.2 cost argument, demonstrated.

"Enabling the evaluation of [ancestor-descendant, parent-child and
sibling] relationships from the node label alone contributes
significantly to the reduction of XPath processing costs."

This example runs the same queries over the same bibliography document
with a full prefix scheme (QED: every axis from labels) and the vector
scheme (only ancestor-descendant from labels; other axes fall back to
tree navigation), showing identical answers and counting the fallbacks.

    python examples/xpath_queries.py
"""

from repro import LabeledDocument, make_scheme, parse
from repro.axes.xpath import XPathEvaluator

LIBRARY = """
<library>
  <section genre="fiction">
    <book year="1965"><title>Dune</title><author>Herbert</author></book>
    <book year="1984"><title>Neuromancer</title><author>Gibson</author></book>
  </section>
  <section genre="reference">
    <book year="2004"><title>XPath 2.0</title><author>Kay</author></book>
  </section>
</library>
"""

QUERIES = [
    "/library/section",
    "//book/title",
    "//book[@year='1984']/author",
    "//section[@genre='reference']//title",
    "//author/ancestor::section",
    "//title/following-sibling::author",
    "//book[2]",
]


def main():
    for scheme_name in ("qed", "vector"):
        ldoc = LabeledDocument(parse(LIBRARY), make_scheme(scheme_name))
        evaluator = XPathEvaluator(ldoc, allow_fallback=True)
        print(f"=== {scheme_name} "
              f"(XPath Evaluations grade: "
              f"{'F — all axes from labels' if scheme_name == 'qed' else 'P — ancestor/descendant only'}) ===")
        for query in QUERIES:
            result = evaluator.evaluate(query)
            rendered = [
                node.text_value().strip() or node.name for node in result
            ]
            print(f"  {query:42s} -> {rendered}")
        print(f"  tree-navigation fallbacks used: {evaluator.axes.fallbacks}\n")


if __name__ == "__main__":
    main()
