"""Use case from section 5.2: document history with persistent labels.

"A repository that may want to record document history and enable
version control would select a labelling scheme supporting persistent
labels."  This example builds exactly that: a tiny version store that
records annotations keyed by node *label*.  Because QED labels are
persistent, a label recorded at revision 1 still denotes the same node
after any amount of editing — so diffs and annotations survive.  The
same store over DeweyID breaks immediately: inserting a sibling shifts
following labels onto different nodes.

    python examples/version_control.py
"""

from repro import LabeledDocument, make_scheme, parse

DOCUMENT = "<report><intro/><body><p>one</p><p>two</p></body><end/></report>"


class VersionStore:
    """A label-keyed changelog over a labelled document."""

    def __init__(self, ldoc):
        self.ldoc = ldoc
        self.annotations = []  # (label string, annotated node_id)

    def annotate(self, node, note):
        """Record a note against the node's current label."""
        self.annotations.append(
            (self.ldoc.format_label(node), node.node_id, note)
        )

    def resolve(self):
        """Look every recorded label up in the *current* document."""
        current = {
            self.ldoc.format_label(node): node.node_id
            for node in self.ldoc.document.labeled_nodes()
        }
        report = []
        for label_string, original_id, note in self.annotations:
            found = current.get(label_string)
            if found is None:
                outcome = "label vanished"
            elif found == original_id:
                outcome = "still the same node"
            else:
                outcome = "NOW POINTS AT A DIFFERENT NODE"
            report.append((label_string, note, outcome))
        return report


def run(scheme_name):
    ldoc = LabeledDocument(parse(DOCUMENT), make_scheme(scheme_name))
    store = VersionStore(ldoc)
    body = ldoc.document.root.element_children()[1]

    # Revision 1: annotate the second paragraph.
    store.annotate(body.element_children()[1], "fact-check this")

    # Revisions 2..6: heavy editing *before* the annotated node.
    for index in range(5):
        ldoc.insert_before(body.element_children()[0], f"draft{index}")

    return ldoc.log.relabeled_nodes, store.resolve()


def main():
    for scheme_name in ("qed", "dewey"):
        relabelled, report = run(scheme_name)
        print(f"=== {scheme_name} ===")
        print(f"nodes relabelled during editing: {relabelled}")
        label, note, outcome = report[0]
        print(f"annotation {note!r} was recorded on label {label}")
        print(f"after editing, that label ... {outcome}")
        if outcome == "still the same node":
            print("-> persistent labels: version history survives editing\n")
        else:
            print("-> non-persistent labels: recorded history is corrupted; "
                  "this is why the paper's section 5.2 prescribes "
                  "Persistent Labels = F for version control\n")


if __name__ == "__main__":
    main()
