"""An XML repository end to end: ingest, query, snapshot, advise.

The survey's framing — "the adoption of XML repositories in mainstream
industry" — as a working session: pick schemes with the section 5.2
selection advice, open a repository over a storage backend, ingest
documents, answer pattern queries through structural joins over labels,
and snapshot/restore with the bit-exact label codecs.

    python examples/repository.py

Swap the ``memory://`` URL for ``sqlite:///catalog.db`` or
``pagefile:///catalog.pages`` and the same session persists to disk.
"""

from repro.store import open_repository, suggest_scheme

CATALOG = """
<catalog>
  <category name="databases">
    <book><title>Readings in Database Systems</title><year>2005</year></book>
    <book><title>Transaction Processing</title><year>1992</year></book>
  </category>
  <category name="xml">
    <book><title>XPath 2.0 Programmer's Reference</title><year>2004</year></book>
  </category>
</catalog>
"""

ORDERS = """
<orders>
  <order id="1"><item sku="A1"/><item sku="B2"/></order>
  <order id="2"><item sku="A1"/></order>
</orders>
"""


def main():
    # 1. Section 5.2's advice: which scheme fits the requirements?
    requirements = ["version-control", "large-documents", "compact"]
    suggested = suggest_scheme(requirements)
    print("requirements:", ", ".join(requirements))
    print("Figure 7 suggests:", ", ".join(suggested), "\n")

    # 2. Open a repository (in-RAM here; sqlite:/// or pagefile:///
    #    for disk) and ingest documents under the suggested scheme.
    repo = open_repository("memory://", default_scheme=suggested[0])
    repo.add("catalog", CATALOG)
    repo.add("orders", ORDERS, scheme="qed")

    # 3. Index-driven queries: structural joins over labels, no tree
    #    navigation.
    catalog = repo.get("catalog")
    titles = catalog.descendant_path(["category", "book", "title"])
    print("catalog//category//book//title:")
    for title in titles:
        print("  -", title.text_value())
    print("\nbooks from 2004:",
          [n.parent.element_children()[0].text_value()
           for n in catalog.find_value("2004")])

    # 4. Snapshot, edit, restore — labels survive bit-identically.
    snapshot = repo.snapshot("catalog")
    shelf = catalog.find("category")[0]
    catalog.ldoc.append_child(shelf, "book")
    print("\nafter edit, live catalog has",
          len(catalog.find("book")), "books")
    frozen = repo.restore(snapshot, name="catalog@v1")
    print("restored snapshot has", len(frozen.find("book")), "books")

    # 5. Storage accounting across the repository.
    print("\nstorage report:")
    for name, scheme, nodes, bits in repo.storage_report():
        print(f"  {name:12s} scheme={scheme:6s} nodes={nodes:3d} "
              f"label-bits={bits}")


if __name__ == "__main__":
    main()
