"""Operation counters used by the Division/Recursion probes."""

from repro.analysis.instrumentation import Instrumentation


class TestArithmetic:
    def test_divide_counts_and_computes(self):
        counters = Instrumentation()
        assert counters.divide(7, 2) == 3
        assert counters.divisions == 1

    def test_divide_float(self):
        counters = Instrumentation()
        assert counters.divide_float(1.0, 4.0) == 0.25
        assert counters.divisions == 1

    def test_multiply_and_add(self):
        counters = Instrumentation()
        assert counters.multiply(3, 4) == 12
        assert counters.add(3, 4) == 7
        assert counters.multiplications == 1
        assert counters.additions == 1

    def test_comparison_counter(self):
        counters = Instrumentation()
        counters.note_comparison()
        counters.note_comparison()
        assert counters.comparisons == 2


class TestRecursionTracking:
    def test_depth_tracking(self):
        counters = Instrumentation()

        def recurse(depth):
            with counters.recursive_call():
                if depth:
                    recurse(depth - 1)

        recurse(4)
        assert counters.recursions == 5
        assert counters.max_recursion_depth == 5
        assert counters.used_recursion

    def test_depth_unwinds(self):
        counters = Instrumentation()
        with counters.recursive_call():
            pass
        with counters.recursive_call():
            pass
        assert counters.max_recursion_depth == 1

    def test_depth_unwinds_on_exception(self):
        counters = Instrumentation()
        try:
            with counters.recursive_call():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert counters._recursion_depth == 0


class TestReset:
    def test_reset_zeroes_everything(self):
        counters = Instrumentation()
        counters.divide(4, 2)
        counters.multiply(2, 2)
        with counters.recursive_call():
            pass
        counters.reset()
        assert counters.snapshot() == {
            "divisions": 0,
            "multiplications": 0,
            "additions": 0,
            "comparisons": 0,
            "recursions": 0,
            "max_recursion_depth": 0,
        }
        assert not counters.used_division
        assert not counters.used_recursion
