"""Storage summaries and growth experiments."""

from conftest import fresh_random_document, labeled
from repro.analysis.growth import (
    growth_table,
    linearity_ratio,
    render_growth_table,
    skewed_growth_series,
)
from repro.analysis.storage import (
    compare_schemes,
    render_comparison,
    summarize,
)
from repro.data.sample import sample_document


class TestStorageSummary:
    def test_summarize(self):
        summary = summarize(labeled(sample_document(), "qed"))
        assert summary.scheme == "qed"
        assert summary.labeled_nodes == 10
        assert summary.total_bits > 0
        assert summary.bits_per_label == summary.total_bits / 10
        assert summary.total_bytes == summary.total_bits / 8

    def test_compare_schemes_builds_fresh_documents(self):
        results = compare_schemes(
            lambda: fresh_random_document(60, seed=51),
            ["qed", "cdqs", "prepost"],
        )
        assert set(results) == {"qed", "cdqs", "prepost"}
        assert all(r.labeled_nodes == results["qed"].labeled_nodes
                   for r in results.values())

    def test_compare_with_workload(self):
        from repro.updates.workloads import skewed_insertions

        results = compare_schemes(
            sample_document,
            ["qed", "vector"],
            workload=lambda ldoc: skewed_insertions(ldoc, 30),
        )
        assert results["qed"].labeled_nodes == 40

    def test_render_comparison(self):
        results = compare_schemes(sample_document, ["qed"])
        rendered = render_comparison(results)
        assert "Bits/Label" in rendered
        assert "qed" in rendered


class TestGrowthSeries:
    def test_series_samples_at_steps(self):
        series = skewed_growth_series("qed", 60, step=20)
        assert [point.inserts for point in series] == [20, 40, 60]

    def test_vector_sublinear_qed_linear(self):
        # The section 5 claim, as a measured ordering.
        qed = linearity_ratio(skewed_growth_series("qed", 160, step=40))
        vector = linearity_ratio(skewed_growth_series("vector", 160, step=40))
        assert qed >= 0.5
        assert vector <= 0.2
        assert vector < qed

    def test_growth_table_render(self):
        table = growth_table(["qed", "vector"], 40, step=20)
        rendered = render_growth_table(table)
        assert "inserts" in rendered
        assert "qed" in rendered
        assert render_growth_table({}) == ""

    def test_relabeling_tracked_in_series(self):
        series = skewed_growth_series("dewey", 40, step=20)
        assert series[-1].relabeled_nodes > 0
