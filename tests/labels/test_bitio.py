"""Bit-level I/O used by the label stream codecs."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidLabelError
from repro.labels.bitio import BitReader, BitWriter


class TestWriter:
    def test_bits_pack_msb_first(self):
        writer = BitWriter()
        writer.write_bits(0b101, 3)
        assert writer.getvalue() == bytes([0b10100000])

    def test_partial_byte_padded(self):
        writer = BitWriter()
        writer.write_bit(1)
        assert writer.getvalue() == bytes([0x80])
        assert writer.bit_length == 1

    def test_value_must_fit(self):
        writer = BitWriter()
        with pytest.raises(InvalidLabelError):
            writer.write_bits(4, 2)
        with pytest.raises(InvalidLabelError):
            writer.write_bits(-1, 4)

    def test_bitstring_and_bytes(self):
        writer = BitWriter()
        writer.write_bitstring("1010")
        writer.write_bytes(b"\xff")
        assert writer.bit_length == 12
        with pytest.raises(InvalidLabelError):
            writer.write_bitstring("12")


class TestReader:
    def test_round_trip_values(self):
        writer = BitWriter()
        for value, width in ((5, 3), (0, 1), (255, 8), (1023, 10)):
            writer.write_bits(value, width)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        for value, width in ((5, 3), (0, 1), (255, 8), (1023, 10)):
            assert reader.read_bits(width) == value
        assert reader.exhausted

    def test_exhaustion_raises(self):
        reader = BitReader(b"\x00", bit_length=3)
        reader.read_bits(3)
        with pytest.raises(InvalidLabelError):
            reader.read_bit()

    def test_peek_does_not_consume(self):
        writer = BitWriter()
        writer.write_bits(0b1101, 4)
        reader = BitReader(writer.getvalue())
        assert reader.peek_bits(4) == 0b1101
        assert reader.position == 0
        assert reader.read_bits(4) == 0b1101

    def test_bitstring_read(self):
        writer = BitWriter()
        writer.write_bitstring("0110")
        reader = BitReader(writer.getvalue())
        assert reader.read_bitstring(4) == "0110"

    def test_bit_length_validated(self):
        with pytest.raises(InvalidLabelError):
            BitReader(b"\x00", bit_length=9)


@given(st.lists(st.tuples(
    st.integers(min_value=0, max_value=2**16 - 1),
    st.integers(min_value=16, max_value=20),
), max_size=20))
def test_arbitrary_sequences_round_trip(pairs):
    writer = BitWriter()
    for value, width in pairs:
        writer.write_bits(value, width)
    reader = BitReader(writer.getvalue(), writer.bit_length)
    for value, width in pairs:
        assert reader.read_bits(width) == value
