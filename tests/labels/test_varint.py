"""Unit and property tests for the UTF-8-style varint codec."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidLabelError
from repro.labels.varint import (
    decode,
    encode,
    encoded_size_bits,
    encoded_size_bytes,
    single_unit_limit,
)


class TestSizeLadder:
    @pytest.mark.parametrize("value,expected", [
        (0, 1), (127, 1),
        (128, 2), (2047, 2),
        (2048, 3), (65535, 3),
        (65536, 4), ((1 << 21) - 1, 4),
        (1 << 21, 9), ((1 << 42) - 1, 9),
        (1 << 42, 13),
    ])
    def test_utf8_ladder_and_extension(self, value, expected):
        assert encoded_size_bytes(value) == expected
        assert len(encode(value)) == expected

    def test_bits_are_eight_times_bytes(self):
        assert encoded_size_bits(500) == 8 * encoded_size_bytes(500)

    def test_single_unit_limit_is_two_to_21(self):
        # The bound the survey quotes when questioning the vector
        # scheme's delimiter handling (section 4).
        assert single_unit_limit() == 1 << 21

    def test_negative_rejected(self):
        with pytest.raises(InvalidLabelError):
            encoded_size_bytes(-1)
        with pytest.raises(InvalidLabelError):
            encode(-1)


class TestRoundTrip:
    @given(value=st.integers(min_value=0, max_value=(1 << 60)))
    def test_decode_inverts_encode(self, value):
        decoded, consumed = decode(encode(value))
        assert decoded == value
        assert consumed == encoded_size_bytes(value)

    @pytest.mark.parametrize("value", [
        0, 1, 127, 128, 2047, 2048, 65535, 65536,
        (1 << 20), (1 << 21) - 1, (1 << 21), (1 << 40), (1 << 60),
    ])
    def test_boundary_values(self, value):
        assert decode(encode(value))[0] == value

    def test_decode_from_stream_prefix(self):
        data = encode(300) + encode(7)
        first, used = decode(data)
        assert first == 300
        second, _ = decode(data[used:])
        assert second == 7


class TestMalformedInput:
    def test_empty_rejected(self):
        with pytest.raises(InvalidLabelError):
            decode(b"")

    def test_truncated_multibyte_rejected(self):
        data = encode(2048)[:1]
        with pytest.raises(InvalidLabelError):
            decode(data)

    def test_bad_continuation_rejected(self):
        data = bytes([0xC2, 0x00])
        with pytest.raises(InvalidLabelError):
            decode(data)

    def test_bad_lead_rejected(self):
        with pytest.raises(InvalidLabelError):
            decode(bytes([0x80]))

    def test_zero_unit_chain_rejected(self):
        with pytest.raises(InvalidLabelError):
            decode(bytes([0xF8]))
