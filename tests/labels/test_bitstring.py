"""Unit and property tests for the ImprovedBinary/CDBS binary-string algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidLabelError
from repro.labels.bitstring import (
    after_last_code,
    before_first_code,
    code_size_bits,
    code_to_fraction,
    compact_code_between,
    compact_initial_codes,
    initial_codes,
    middle_code,
    validate_code,
)

#: Valid ImprovedBinary codes: bits ending in 1.
codes = st.text(alphabet="01", min_size=0, max_size=10).map(lambda s: s + "1")


class TestValidation:
    def test_valid_codes_pass(self):
        for code in ("1", "01", "0101", "011"):
            validate_code(code)

    @pytest.mark.parametrize("bad", ["", "0", "10", "012", "abc"])
    def test_invalid_codes_rejected(self, bad):
        with pytest.raises(InvalidLabelError):
            validate_code(bad)


class TestPublishedRules:
    def test_figure6_middles(self):
        assert middle_code("01", "011") == "0101"
        assert middle_code("01", "0101") == "01001"
        assert middle_code("0101", "011") == "01011"

    def test_figure6_before_first(self):
        assert before_first_code("01") == "001"

    def test_figure6_after_last(self):
        assert after_last_code("01") == "011"

    def test_middle_requires_order(self):
        with pytest.raises(InvalidLabelError):
            middle_code("011", "01")

    @given(left=codes, right=codes)
    def test_middle_is_strictly_between(self, left, right):
        if left == right:
            return
        low, high = sorted([left, right])
        middle = middle_code(low, high)
        assert low < middle < high
        validate_code(middle)

    @given(code=codes)
    def test_before_first_strictly_smaller(self, code):
        before = before_first_code(code)
        assert before < code
        validate_code(before)

    @given(code=codes)
    def test_after_last_strictly_greater(self, code):
        after = after_last_code(code)
        assert after > code
        validate_code(after)


class TestFractionOrderIsomorphism:
    @given(left=codes, right=codes)
    def test_lexicographic_equals_fraction_order(self, left, right):
        string_order = (left > right) - (left < right)
        left_value, right_value = code_to_fraction(left), code_to_fraction(right)
        value_order = (left_value > right_value) - (left_value < right_value)
        assert string_order == value_order

    def test_known_values(self):
        from fractions import Fraction

        assert code_to_fraction("1") == Fraction(1, 2)
        assert code_to_fraction("01") == Fraction(1, 4)
        assert code_to_fraction("011") == Fraction(3, 8)


class TestBulkAssignment:
    @pytest.mark.parametrize("count", [0, 1, 2, 3, 4, 7, 16, 33])
    def test_initial_codes_sorted_unique_valid(self, count):
        result = initial_codes(count)
        assert len(result) == count
        assert result == sorted(result)
        assert len(set(result)) == count
        for code in result:
            validate_code(code)

    def test_initial_codes_figure6(self):
        assert initial_codes(3) == ["01", "0101", "011"]

    def test_negative_count_rejected(self):
        with pytest.raises(InvalidLabelError):
            initial_codes(-1)

    @pytest.mark.parametrize("count", [0, 1, 2, 5, 12, 40])
    def test_compact_initial_codes_sorted_unique_valid(self, count):
        result = compact_initial_codes(count)
        assert len(result) == count
        assert result == sorted(result)
        assert len(set(result)) == count
        for code in result:
            validate_code(code)

    def test_compact_codes_shorter_than_improved_binary(self):
        dense = compact_initial_codes(64)
        sparse = initial_codes(64)
        assert sum(map(len, dense)) < sum(map(len, sparse))


class TestCompactBetween:
    @given(left=codes, right=codes)
    def test_compact_between_is_shortest(self, left, right):
        if left == right:
            return
        low, high = sorted([left, right])
        shortest = compact_code_between(low, high)
        assert low < shortest < high
        validate_code(shortest)
        # No valid shorter code exists in the interval.
        fallback = middle_code(low, high)
        assert len(shortest) <= len(fallback)

    def test_open_ends(self):
        assert compact_code_between("", "1") < "1"
        assert compact_code_between("1", None) > "1"

    def test_empty_interval_rejected(self):
        with pytest.raises(InvalidLabelError):
            compact_code_between("01", "01")


class TestSize:
    def test_one_bit_per_symbol(self):
        assert code_size_bits("0101") == 4
