"""Property tests for the generic ordered-string machinery."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidLabelError
from repro.labels.ordered_strings import (
    compare_strings,
    evenly_spaced_codes,
    shortest_string_between,
    validate_alphabet_string,
)

binary = st.text(alphabet="01", min_size=0, max_size=9).map(lambda s: s + "1")
quaternary = st.tuples(
    st.text(alphabet="123", min_size=0, max_size=7),
    st.sampled_from(["2", "3"]),
).map(lambda pair: pair[0] + pair[1])


class TestCompare:
    def test_three_way_convention(self):
        assert compare_strings("a", "b") == -1
        assert compare_strings("b", "a") == 1
        assert compare_strings("a", "a") == 0

    def test_prefix_is_smaller(self):
        assert compare_strings("01", "011") == -1


class TestValidateAlphabet:
    def test_accepts_valid(self):
        validate_alphabet_string("0101", ("0", "1"), "code")

    def test_rejects_foreign_characters(self):
        with pytest.raises(InvalidLabelError):
            validate_alphabet_string("012", ("0", "1"), "code")


class TestShortestBetween:
    @given(left=binary, right=binary)
    def test_binary_interval(self, left, right):
        if left == right:
            return
        low, high = sorted([left, right])
        result = shortest_string_between(low, high, "01", valid_last="1")
        assert low < result < high
        assert result.endswith("1")

    @given(left=quaternary, right=quaternary)
    def test_quaternary_interval(self, left, right):
        if left == right:
            return
        low, high = sorted([left, right])
        result = shortest_string_between(low, high, "123", valid_last="23")
        assert low < result < high
        assert result[-1] in "23"

    @given(code=binary)
    def test_open_lower_end(self, code):
        result = shortest_string_between("", code, "01", valid_last="1")
        assert result < code

    @given(code=binary)
    def test_open_upper_end(self, code):
        result = shortest_string_between(code, None, "01", valid_last="1")
        assert result > code

    def test_minimality(self):
        # Between 01 and 1 the single-symbol codes 0 and 1 are out of
        # range or invalid, so the shortest valid answer has two symbols.
        result = shortest_string_between("01", "1", "01", valid_last="1")
        assert result == "011"

    def test_empty_interval_rejected(self):
        with pytest.raises(InvalidLabelError):
            shortest_string_between("1", "1", "01", valid_last="1")

    def test_reversed_interval_rejected(self):
        with pytest.raises(InvalidLabelError):
            shortest_string_between("1", "01", "01", valid_last="1")


class TestEvenlySpaced:
    @pytest.mark.parametrize("count", [0, 1, 2, 3, 10, 50])
    def test_sorted_unique_valid(self, count):
        result = evenly_spaced_codes(count, "123", valid_last="23")
        assert len(result) == count
        assert result == sorted(result)
        assert len(set(result)) == count
        for code in result:
            assert code[-1] in "23"

    def test_negative_rejected(self):
        with pytest.raises(InvalidLabelError):
            evenly_spaced_codes(-1, "01")

    def test_codes_are_the_shortest_available(self):
        # Binary codes ending in 1: one of length 1, two of length 2,
        # four of length 3 — ten codes need lengths 1+2+4+3x4.
        result = evenly_spaced_codes(10, "01", valid_last="1")
        assert sorted(map(len, result)) == [1, 2, 2, 3, 3, 3, 3, 4, 4, 4]
