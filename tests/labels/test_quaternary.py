"""Unit and property tests for the QED/CDQS quaternary-code algebra."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import InvalidLabelError
from repro.labels.quaternary import (
    after_last_code,
    before_first_code,
    between_or_end,
    code_between,
    code_size_bits,
    code_to_fraction,
    compact_code_between,
    compact_initial_codes,
    initial_codes,
    validate_code,
)

#: Valid QED codes: digits 1-3 ending in 2 or 3.
qed_codes = st.tuples(
    st.text(alphabet="123", min_size=0, max_size=8),
    st.sampled_from(["2", "3"]),
).map(lambda pair: pair[0] + pair[1])


class TestValidation:
    def test_valid_codes(self):
        for code in ("2", "3", "12", "322", "1113"):
            validate_code(code)

    @pytest.mark.parametrize("bad", ["", "1", "21", "0", "402", "2a"])
    def test_invalid_codes_rejected(self, bad):
        with pytest.raises(InvalidLabelError):
            validate_code(bad)

    def test_codes_never_contain_separator_digit(self):
        # The digit 0 is the reserved separator (section 4); no code may
        # contain it, which is what makes separator storage sound.
        for count in (1, 5, 20, 60):
            for code in initial_codes(count) + compact_initial_codes(count):
                assert "0" not in code


class TestInsertionRules:
    @given(left=qed_codes, right=qed_codes)
    def test_between_is_strictly_between_and_valid(self, left, right):
        if left == right:
            return
        low, high = sorted([left, right])
        middle = code_between(low, high)
        assert low < middle < high
        validate_code(middle)

    @given(code=qed_codes)
    def test_before_first(self, code):
        before = before_first_code(code)
        assert before < code
        validate_code(before)

    @given(code=qed_codes)
    def test_after_last(self, code):
        after = after_last_code(code)
        assert after > code
        validate_code(after)

    def test_between_requires_order(self):
        with pytest.raises(InvalidLabelError):
            code_between("3", "2")

    def test_published_cases(self):
        # len(left) >= len(right), trailing 2 -> 3.
        assert code_between("12", "2") == "13"
        # len(left) >= len(right), trailing 3 -> append 2.
        assert code_between("13", "2") == "132"
        # len(left) < len(right), right trailing 3 -> 2.
        assert code_between("2", "23") == "22"
        # len(left) < len(right), right trailing 2 -> 12 suffix.
        assert code_between("2", "212") == "2112"

    def test_tight_gap_falls_back_to_search(self):
        middle = code_between("2", "3")
        assert "2" < middle < "3"

    def test_between_or_end_handles_open_ends(self):
        assert between_or_end("", "") == "2"
        assert between_or_end("", "2") < "2"
        assert between_or_end("3", "") > "3"
        assert "2" < between_or_end("2", "3") < "3"

    def test_repeated_right_insertion_never_relabels(self):
        # QED's core promise: an infinite insertion sequence exists.
        code = "2"
        seen = {code}
        for _ in range(100):
            code = after_last_code(code)
            validate_code(code)
            assert code not in seen
            seen.add(code)
        assert sorted(seen) == sorted(seen, key=code_to_fraction)


class TestFractionOrderIsomorphism:
    @given(left=qed_codes, right=qed_codes)
    def test_lexicographic_equals_fraction_order(self, left, right):
        string_order = (left > right) - (left < right)
        left_value, right_value = code_to_fraction(left), code_to_fraction(right)
        value_order = (left_value > right_value) - (left_value < right_value)
        assert string_order == value_order


class TestBulkAssignment:
    @pytest.mark.parametrize("count", [0, 1, 2, 3, 5, 9, 27, 64])
    def test_initial_codes_sorted_unique_valid(self, count):
        result = initial_codes(count)
        assert len(result) == count
        assert result == sorted(result)
        assert len(set(result)) == count
        for code in result:
            validate_code(code)

    @pytest.mark.parametrize("count", [0, 1, 2, 6, 18, 55])
    def test_compact_initial_codes_sorted_unique_valid(self, count):
        result = compact_initial_codes(count)
        assert len(result) == count
        assert result == sorted(result)
        for code in result:
            validate_code(code)

    def test_compact_is_no_longer_than_qed(self):
        dense = compact_initial_codes(100)
        sparse = initial_codes(100)
        assert sum(map(len, dense)) <= sum(map(len, sparse))


class TestCompactBetween:
    @given(left=qed_codes, right=qed_codes)
    def test_compact_between_minimal(self, left, right):
        if left == right:
            return
        low, high = sorted([left, right])
        shortest = compact_code_between(low, high)
        assert low < shortest < high
        validate_code(shortest)
        assert len(shortest) <= len(code_between(low, high))


class TestSize:
    def test_two_bits_per_digit(self):
        assert code_size_bits("213") == 6
