"""ComparisonCache: memoized compare/is_ancestor correctness and reuse."""

import pytest

from conftest import labeled
from repro.data.sample import sample_document
from repro.observability.metrics import get_registry
from repro.schemes.cache import ComparisonCache, comparison_cache_for
from repro.schemes.registry import make_scheme


@pytest.fixture
def qed():
    return make_scheme("qed")


class TestCachedCompare:
    def test_matches_scheme_compare(self, qed):
        cache = ComparisonCache(qed)
        labels = qed.label_tree(sample_document())
        values = list(labels.values())
        for left in values:
            for right in values:
                assert cache.compare(left, right) == qed.compare(left, right)

    def test_second_call_hits(self, qed):
        cache = ComparisonCache(qed)
        hits = get_registry().counter("compare_cache.hits")
        before = hits.value
        cache.compare(("2",), ("3",))
        assert hits.value == before
        cache.compare(("2",), ("3",))
        assert hits.value == before + 1

    def test_reverse_pair_seeded_on_miss(self, qed):
        cache = ComparisonCache(qed)
        hits = get_registry().counter("compare_cache.hits")
        cache.compare(("2",), ("3",))
        before = hits.value
        assert cache.compare(("3",), ("2",)) == 1
        assert hits.value == before + 1

    def test_is_ancestor_matches_scheme(self, qed):
        cache = ComparisonCache(qed)
        parent = ("2",)
        child = ("2", "3")
        assert cache.is_ancestor(parent, child) is True
        assert cache.is_ancestor(child, parent) is False
        # Cached round agrees.
        assert cache.is_ancestor(parent, child) is True

    def test_unhashable_labels_bypass(self, qed):
        cache = ComparisonCache(qed)
        uncacheable = get_registry().counter("compare_cache.uncacheable")
        before = uncacheable.value
        assert cache.compare(["2"], ["3"]) == qed.compare(["2"], ["3"])
        assert uncacheable.value == before + 1


class TestEviction:
    def test_trim_keeps_cache_bounded(self, qed):
        """Regression: the mirrored (right, left) insert used to skip the
        trim check, letting the table exceed ``max_entries``; the bound
        is now strict."""
        cache = ComparisonCache(qed, max_entries=4)
        for index in range(20):
            cache.compare((str(index + 2),), ("3",))
            assert len(cache._compare) <= cache.max_entries

    def test_ancestor_table_also_bounded(self, qed):
        cache = ComparisonCache(qed, max_entries=3)
        for index in range(10):
            cache.is_ancestor(("2",), (str(index + 2), "2"))
            assert len(cache._ancestor) <= cache.max_entries

    def test_max_entries_below_mirrored_pair_rejected(self, qed):
        """compare() always stores both orientations of a pair, so a cap
        of 1 could never hold; it is rejected up front."""
        with pytest.raises(ValueError):
            ComparisonCache(qed, max_entries=1)

    def test_invalidate(self, qed):
        cache = ComparisonCache(qed)
        cache.compare(("2",), ("3",))
        cache.invalidate()
        assert len(cache._compare) == 0

    def test_trim_publishes_eviction_counters(self, qed):
        registry = get_registry()
        evictions = registry.counter("compare_cache.evictions")
        evicted = registry.counter("compare_cache.evicted_entries")
        before_evictions = evictions.value
        before_evicted = evicted.value
        cache = ComparisonCache(qed, max_entries=4)
        for index in range(8):
            cache.compare((str(index + 2),), ("3",))
        assert evictions.value > before_evictions
        # wholesale trim: each eviction drops a full table
        assert evicted.value - before_evicted >= cache.max_entries - 1

    def test_invalidate_is_not_an_eviction(self, qed):
        evictions = get_registry().counter("compare_cache.evictions")
        cache = ComparisonCache(qed)
        cache.compare(("2",), ("3",))
        before = evictions.value
        cache.invalidate()
        assert evictions.value == before

    def test_relabelling_invalidates_document_cache(self):
        """A state-mutating relabel must drop memoized comparisons: the
        old label values' orderings are meaningless afterwards."""
        ldoc = labeled(sample_document(), "dewey")
        cache = comparison_cache_for(ldoc.scheme)
        ldoc.verify_order()  # populate
        assert len(cache._compare) > 0
        first = ldoc.document.root.element_children()[0]
        # A Dewey front insertion shifts every follower: relabelling.
        ldoc.insert_before(first, "front")
        assert len(cache._compare) == 0

    def test_batch_relabel_pass_invalidates_cache(self):
        ldoc = labeled(sample_document(), "dewey")
        cache = comparison_cache_for(ldoc.scheme)
        ldoc.verify_order()
        with ldoc.batch() as batch:
            first = ldoc.document.root.element_children()[0]
            batch.insert_before(first, "front")
        assert len(cache._compare) == 0


class TestSharedCache:
    def test_one_cache_per_scheme_instance(self, qed):
        assert comparison_cache_for(qed) is comparison_cache_for(qed)
        other = make_scheme("qed")
        assert comparison_cache_for(other) is not comparison_cache_for(qed)

    def test_sort_key_orders_documents(self):
        ldoc = labeled(sample_document(), "dewey")
        in_order = ldoc.labels_in_document_order()
        shuffled = list(reversed(in_order))
        cache = comparison_cache_for(ldoc.scheme)
        assert sorted(shuffled, key=cache.sort_key()) == in_order

    def test_verify_order_uses_cache(self):
        ldoc = labeled(sample_document(), "vector")
        hits = get_registry().counter("compare_cache.hits")
        ldoc.verify_order()
        before = hits.value
        ldoc.verify_order()
        # The second verification replays the same label pairs.
        assert hits.value > before
