"""Cross-scheme properties: every scheme, same contracts.

Definition 1 requires unique labels that decide document order; these
tests enforce it for all seventeen implemented schemes across bulk
labelling, every insertion kind, deletions, subtree insertion and
randomised update programs (hypothesis).  Schemes answer relationship
queries only where their Figure 7 row claims support, and those answers
must match the tree oracle.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from conftest import (
    COLLIDING_SCHEMES,
    FULL_XPATH_SCHEMES,
    PERSISTENT_SCHEMES,
    all_scheme_names,
    document_pairs,
    fresh_random_document,
    labeled,
)
from repro.axes.relationships import Relationship, supported_relationships
from repro.data.sample import sample_document
from repro.errors import UnsupportedRelationshipError
from repro.updates.operations import Operation, OpKind, apply_program
from repro.xmlmodel.builder import tree_from_shape, wide_tree

ALL_SCHEMES = all_scheme_names()


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestBulkLabelling:
    def test_every_labeled_node_gets_a_label(self, name, sample):
        ldoc = labeled(sample, name)
        assert set(ldoc.labels) == {
            node.node_id for node in sample.labeled_nodes()
        }

    def test_labels_unique_and_ordered(self, name, sample):
        labeled(sample, name).verify_order()

    def test_random_document_ordered(self, name):
        labeled(fresh_random_document(90, seed=21), name).verify_order()

    def test_wide_document_ordered(self, name):
        labeled(wide_tree(40), name).verify_order()

    def test_deep_document_ordered(self, name):
        shape = None
        for _ in range(9):
            shape = [shape]
        labeled(tree_from_shape([shape]), name).verify_order()

    def test_compare_is_reflexive_and_antisymmetric(self, name, sample):
        ldoc = labeled(sample, name)
        values = ldoc.labels_in_document_order()
        for value in values:
            assert ldoc.scheme.compare(value, value) == 0
        for i, a in enumerate(values):
            for b in values[i + 1 :]:
                assert ldoc.scheme.compare(a, b) == -ldoc.scheme.compare(b, a)

    def test_format_label_is_a_string(self, name, sample):
        ldoc = labeled(sample, name)
        for node in sample.labeled_nodes():
            assert isinstance(ldoc.format_label(node), str)

    def test_label_sizes_positive(self, name, sample):
        ldoc = labeled(sample, name)
        root_id = sample.root.node_id
        for node_id, label in ldoc.labels.items():
            size = ldoc.scheme.label_size_bits(label)
            if node_id == root_id:
                # Some prefix schemes give the root the empty path.
                assert size >= 0
            else:
                assert size > 0


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestRelationshipOracle:
    def test_claimed_relationships_match_oracle(self, name, sample):
        """Whatever a scheme answers must agree with tree pointers."""
        ldoc = labeled(sample, name)
        scheme = ldoc.scheme
        for first, second in document_pairs(sample):
            la, lb = ldoc.label_of(first), ldoc.label_of(second)
            try:
                assert scheme.is_ancestor(la, lb) == first.is_ancestor_of(second)
            except UnsupportedRelationshipError:
                pass
            try:
                assert scheme.is_parent(la, lb) == (second.parent is first)
            except UnsupportedRelationshipError:
                pass
            try:
                expected = (
                    first.parent is not None
                    and first.parent is second.parent
                )
                assert scheme.is_sibling(la, lb) == expected
            except UnsupportedRelationshipError:
                pass

    def test_level_matches_depth_where_supported(self, name, sample):
        ldoc = labeled(sample, name)
        try:
            for node in sample.labeled_nodes():
                assert ldoc.scheme.level(ldoc.label_of(node)) == node.depth()
        except UnsupportedRelationshipError:
            pass


@pytest.mark.parametrize("name", FULL_XPATH_SCHEMES)
def test_full_xpath_schemes_support_all_relationships(name):
    supported = supported_relationships(
        labeled(sample_document(), name).scheme, sample_document()
    )
    assert supported == set(Relationship)


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestInsertions:
    def test_each_insertion_kind_keeps_order(self, name, sample):
        ldoc = labeled(sample, name)
        root = ldoc.document.root
        children = root.element_children()
        ldoc.prepend_child(root, "front")
        ldoc.verify_order()
        ldoc.append_child(root, "back")
        ldoc.verify_order()
        ldoc.insert_before(children[1], "mid-left")
        ldoc.verify_order()
        ldoc.insert_after(children[1], "mid-right")
        ldoc.verify_order()
        ldoc.insert_attribute(children[0], "k", "v")
        ldoc.verify_order()

    def test_insert_under_leaf(self, name, sample):
        ldoc = labeled(sample, name)
        leaf = next(
            node for node in sample.labeled_nodes()
            if node.is_element and not node.labeled_children()
        )
        ldoc.append_child(leaf, "first-child")
        ldoc.verify_order()

    def test_subtree_insertion(self, name, sample):
        from repro.updates.operations import adopt_subtree

        ldoc = labeled(sample, name)
        root = ldoc.document.root
        adopt_subtree(ldoc, root, len(root.children),
                      "<appendix><note>n1</note><note>n2</note></appendix>")
        ldoc.verify_order()
        names = [n.name for n in ldoc.document.labeled_nodes()]
        assert names[-3:] == ["appendix", "note", "note"]


@pytest.mark.parametrize("name", ALL_SCHEMES)
class TestDeletions:
    def test_delete_leaf_keeps_order(self, name, sample):
        ldoc = labeled(sample, name)
        leaf = next(
            node for node in sample.labeled_nodes()
            if node.is_element and not node.labeled_children()
            and node.parent is not None
        )
        ldoc.delete(leaf)
        ldoc.verify_order()
        assert leaf.node_id not in ldoc.labels

    def test_delete_subtree_removes_all_labels(self, name, sample):
        ldoc = labeled(sample, name)
        publisher = next(
            node for node in sample.labeled_nodes() if node.name == "publisher"
        )
        removed = [n.node_id for n in publisher.preorder() if n.kind.is_labeled]
        ldoc.delete(publisher)
        ldoc.verify_order()
        assert not any(node_id in ldoc.labels for node_id in removed)

    def test_insert_after_delete(self, name, sample):
        ldoc = labeled(sample, name)
        author = next(
            node for node in sample.labeled_nodes() if node.name == "author"
        )
        ldoc.delete(author)
        ldoc.append_child(ldoc.document.root, "replacement")
        ldoc.verify_order()


@pytest.mark.parametrize("name", PERSISTENT_SCHEMES)
class TestPersistence:
    def test_insertions_never_touch_existing_labels(self, name, sample):
        ldoc = labeled(sample, name)
        snapshot = dict(ldoc.labels)
        root = ldoc.document.root
        children = root.element_children()
        for _ in range(25):
            ldoc.insert_before(children[-1], "skew")
        ldoc.prepend_child(root, "front")
        ldoc.append_child(root, "back")
        for node_id, label in snapshot.items():
            assert ldoc.labels[node_id] == label
        assert ldoc.log.relabeled_nodes == 0

    def test_deletion_never_touches_remaining_labels(self, name, sample):
        ldoc = labeled(sample, name)
        author = next(
            node for node in sample.labeled_nodes() if node.name == "author"
        )
        snapshot = {
            node_id: label for node_id, label in ldoc.labels.items()
            if node_id != author.node_id
        }
        ldoc.delete(author)
        assert ldoc.labels == snapshot


#: Compact operation programs for the hypothesis sweep.
operations = st.lists(
    st.builds(
        Operation,
        kind=st.sampled_from([
            OpKind.INSERT_BEFORE, OpKind.INSERT_AFTER,
            OpKind.APPEND_CHILD, OpKind.PREPEND_CHILD, OpKind.DELETE,
        ]),
        target=st.integers(min_value=0, max_value=40),
        name=st.sampled_from(["alpha", "beta", "gamma"]),
    ),
    min_size=1,
    max_size=12,
)


@pytest.mark.parametrize(
    "name",
    [n for n in ALL_SCHEMES if n not in COLLIDING_SCHEMES],
)
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(program=operations)
def test_random_update_programs_preserve_order(name, program):
    """Definition 1 survives arbitrary structural update programs."""
    ldoc = labeled(sample_document(), name)
    apply_program(ldoc, program)
    ldoc.verify_order()
    ldoc.document.validate()
