"""DeweyID tests, including the Figure 3 labels."""

from conftest import label_sequence, labeled
from repro.data.sample import FIGURE_3_DEWEY_LABELS, figure3_tree


class TestFigure3:
    def test_figure3_labels(self):
        ldoc = labeled(figure3_tree(), "dewey")
        assert label_sequence(ldoc) == FIGURE_3_DEWEY_LABELS


class TestInsertionShifts:
    def test_insert_before_shifts_following_siblings(self):
        ldoc = labeled(figure3_tree(), "dewey")
        second = ldoc.document.root.element_children()[1]  # label 1.2
        ldoc.insert_before(second, "new")
        labels = label_sequence(ldoc)
        # The new node takes 1.2; old 1.2 and 1.3 shift to 1.3 and 1.4,
        # carrying their subtrees with them.
        assert "1.2" in labels
        assert "1.4" in labels
        assert "1.4.3" in labels
        ldoc.verify_order()

    def test_shift_relabels_descendants_too(self):
        ldoc = labeled(figure3_tree(), "dewey")
        first = ldoc.document.root.element_children()[0]
        before = ldoc.log.relabeled_nodes
        ldoc.insert_before(first, "new")
        # Following siblings 1.1, 1.2, 1.3 plus their 6 descendants move.
        assert ldoc.log.relabeled_nodes - before == 9

    def test_append_does_not_relabel(self):
        ldoc = labeled(figure3_tree(), "dewey")
        ldoc.append_child(ldoc.document.root, "tail")
        assert ldoc.log.relabeled_nodes == 0
        assert label_sequence(ldoc)[-1] == "1.4"

    def test_deletion_gap_is_reused_without_collision(self):
        ldoc = labeled(figure3_tree(), "dewey")
        children = ldoc.document.root.element_children()
        ldoc.delete(children[1])  # frees 1.2
        ldoc.verify_order()
        node = ldoc.insert_after(children[0], "reuse")
        assert ldoc.format_label(node) == "1.2"
        ldoc.verify_order()

    def test_level_is_depth(self):
        ldoc = labeled(figure3_tree(), "dewey")
        for node in ldoc.document.labeled_nodes():
            assert ldoc.scheme.level(ldoc.label_of(node)) == node.depth()
