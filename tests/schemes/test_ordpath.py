"""ORDPATH tests, including the Figure 4 labels and careting rules."""

import pytest

from conftest import label_sequence, labeled
from repro.data.sample import (
    FIGURE_4_INITIAL_ORDPATH_LABELS,
    FIGURE_4_INSERTED,
    figure_tree,
)
from repro.errors import InvalidLabelError
from repro.schemes.prefix.ordpath import (
    OrdpathScheme,
    component_bits,
    parse_label,
    validate_group,
)


class TestFigure4:
    def test_initial_labels(self):
        ldoc = labeled(figure_tree(), "ordpath")
        assert label_sequence(ldoc) == FIGURE_4_INITIAL_ORDPATH_LABELS

    def test_inserted_labels_match_figure(self):
        ldoc = labeled(figure_tree(), "ordpath")
        children = ldoc.document.root.element_children()
        node_11, node_13, node_15 = children

        before = ldoc.prepend_child(node_11, "new")
        assert ldoc.format_label(before) == FIGURE_4_INSERTED[
            "before_first_under_1.1"
        ]

        after = ldoc.append_child(node_13, "new")
        assert ldoc.format_label(after) == FIGURE_4_INSERTED[
            "after_last_under_1.3"
        ]

        grandchildren = node_15.element_children()
        caret = ldoc.insert_after(grandchildren[0], "new")
        assert ldoc.format_label(caret) == FIGURE_4_INSERTED[
            "between_1.5.1_and_1.5.3"
        ]
        assert ldoc.log.relabeled_nodes == 0
        ldoc.verify_order()


class TestGroups:
    def test_validate_group_accepts_caret_groups(self):
        validate_group((1,))
        validate_group((2, 1))
        validate_group((2, -4, 7))

    @pytest.mark.parametrize("bad", [(), (2,), (1, 3), (2, 2)])
    def test_validate_group_rejects(self, bad):
        with pytest.raises(InvalidLabelError):
            validate_group(bad)

    def test_parse_label_round_trip(self):
        scheme = OrdpathScheme()
        label = parse_label("1.5.2.1")
        assert label == ((1,), (5,), (2, 1))
        assert scheme.format_label(label) == "1.5.2.1"

    def test_parse_label_rejects_dangling_caret(self):
        with pytest.raises(InvalidLabelError):
            parse_label("1.2")

    def test_level_counts_odd_components(self):
        scheme = OrdpathScheme()
        assert scheme.level(parse_label("1")) == 0
        assert scheme.level(parse_label("1.5")) == 1
        assert scheme.level(parse_label("1.5.2.1")) == 2

    def test_caret_node_parent_is_ordinary_node(self):
        # "1.5.2.1" is a child of "1.5", not of a phantom "1.5.2".
        scheme = OrdpathScheme()
        assert scheme.is_parent(parse_label("1.5"), parse_label("1.5.2.1"))
        assert scheme.is_sibling(parse_label("1.5.1"), parse_label("1.5.2.1"))


class TestCareting:
    def setup_method(self):
        self.scheme = OrdpathScheme()

    def test_midpoint_odd_available(self):
        assert self.scheme.component_between((1,), (5,)) == (3,)

    def test_consecutive_odds_caret_in(self):
        assert self.scheme.component_between((1,), (3,)) == (2, 1)

    def test_descend_into_left_caret(self):
        result = self.scheme.component_between((2, 1), (3,))
        assert (2, 1) < result < (3,)

    def test_descend_into_right_caret(self):
        result = self.scheme.component_between((1,), (2, 1))
        assert (1,) < result < (2, 1)

    def test_negative_components(self):
        result = self.scheme.component_between((-3,), (-1,))
        assert (-3,) < result < (-1,)
        validate_group(result)

    def test_division_is_counted(self):
        self.scheme.instruments.reset()
        self.scheme.component_between((1,), (9,))
        assert self.scheme.instruments.divisions == 1

    def test_repeated_caret_chain_stays_ordered(self):
        left, right = (1,), (3,)
        current = left
        previous = left
        for _ in range(60):
            current = self.scheme.component_between(previous, right)
            assert previous < current < right
            validate_group(current)
            previous = current


class TestStorage:
    def test_component_bits_ladder(self):
        # bucket prefix + sign bit + payload
        assert component_bits(0) == 3 + 1 + 3
        assert component_bits(7) == 7
        assert component_bits(8) == 4 + 1 + 6
        assert component_bits(-8) == 11
        assert component_bits(1 << 13) == 6 + 1 + 24

    def test_bucket_exhaustion_raises(self):
        from repro.errors import OverflowEvent

        with pytest.raises(OverflowEvent):
            component_bits(1 << 100)

    def test_tight_buckets_force_relabel(self):
        ldoc = labeled(figure_tree(), "ordpath", max_magnitude=15)
        anchor = ldoc.document.root.element_children()[-1]
        for _ in range(40):
            ldoc.insert_before(anchor, "skew")
        assert ldoc.log.overflow_events >= 1
        ldoc.verify_order()
