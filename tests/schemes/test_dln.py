"""DLN specifics: sub-level insertion and fixed-width overflow."""

import pytest

from conftest import label_sequence, labeled
from repro.data.sample import figure3_tree, sample_document
from repro.schemes.prefix.dln import DLNScheme
from repro.updates.workloads import skewed_insertions


class TestRendering:
    def test_initial_labels_look_like_dewey(self):
        ldoc = labeled(figure3_tree(), "dln")
        assert label_sequence(ldoc)[:4] == ["1", "1.1", "1.1.1", "1.1.2"]

    def test_sublevels_render_with_slashes(self):
        ldoc = labeled(figure3_tree(), "dln")
        children = ldoc.document.root.element_children()
        node = ldoc.insert_after(children[0], "wedge")
        assert "/" in ldoc.format_label(node)


class TestSublevelInsertion:
    def setup_method(self):
        self.scheme = DLNScheme()

    def test_between_top_values(self):
        assert self.scheme.component_between((3,), (4,)) == (3, 1)

    def test_between_prefix_and_extension(self):
        result = self.scheme.component_between((3,), (3, 1))
        assert (3,) < result < (3, 1)

    def test_descending_chain_stays_ordered(self):
        left, right = (3,), (4,)
        current = left
        for _ in range(6):
            current = self.scheme.component_between(current, right)
            assert left < current < right

    def test_before_first_uses_sublevel(self):
        assert self.scheme.component_before((1,)) == (0, 1)
        assert self.scheme.component_before((0, 1)) == (-1, 1)

    def test_after_last_increments_top(self):
        assert self.scheme.component_after((7,)) == (8,)
        assert self.scheme.component_after((7, 3)) == (8,)


class TestFixedWidthOverflow:
    def test_sublevel_depth_overflows(self):
        ldoc = labeled(sample_document(), "dln", max_sublevels=3)
        result = skewed_insertions(ldoc, 30)
        assert result.overflow_events >= 1
        ldoc.verify_order()

    def test_subvalue_width_overflows(self):
        ldoc = labeled(sample_document(), "dln", subvalue_bits=4)
        # Appending more children than 4 bits can number.
        root = ldoc.document.root
        for _ in range(20):
            ldoc.append_child(root, "tail")
        assert ldoc.log.overflow_events >= 1
        ldoc.verify_order()

    def test_fixed_size_model(self):
        scheme = DLNScheme(subvalue_bits=8, max_sublevels=8)
        # Every component slot costs the full fixed allocation.
        assert scheme.component_size_bits((3,)) == 64
        assert scheme.component_size_bits((3, 1, 2)) == 64
