"""LSDX (and Com-D) tests: Figure 5 labels, collisions, reassignment."""

import pytest

from conftest import label_sequence, labeled
from repro.data.sample import (
    FIGURE_5_INITIAL_LSDX_LABELS,
    FIGURE_5_INSERTED,
    figure_tree,
)
from repro.errors import LabelCollisionError
from repro.schemes.prefix.comd import compress, decompress
from repro.schemes.prefix.lsdx import LSDXScheme, increment_letters
from repro.updates.document import LabeledDocument


class TestFigure5:
    def test_initial_labels(self):
        ldoc = labeled(figure_tree(), "lsdx")
        assert label_sequence(ldoc) == FIGURE_5_INITIAL_LSDX_LABELS

    def test_inserted_labels_match_figure(self):
        ldoc = labeled(figure_tree(), "lsdx")
        children = ldoc.document.root.element_children()
        node_b, node_c, node_d = children

        before = ldoc.prepend_child(node_b, "new")
        assert ldoc.format_label(before) == FIGURE_5_INSERTED[
            "before_first_under_1a.b"
        ]

        after = ldoc.append_child(node_c, "new")
        assert ldoc.format_label(after) == FIGURE_5_INSERTED[
            "after_last_under_1a.c"
        ]

        grand = node_d.element_children()
        between = ldoc.insert_after(grand[0], "new")
        assert ldoc.format_label(between) == FIGURE_5_INSERTED[
            "between_2ad.b_and_2ad.c"
        ]
        ldoc.verify_order()


class TestIncrementRule:
    @pytest.mark.parametrize("position,expected", [
        ("b", "c"), ("y", "z"), ("z", "zb"), ("zz", "zzb"), ("az", "azb"),
        ("cb", "cc"),
    ])
    def test_increment(self, position, expected):
        assert increment_letters(position) == expected

    def test_bulk_sequence(self):
        scheme = LSDXScheme()
        components = scheme.initial_child_components(27)
        assert components[0] == "b"
        assert components[24] == "z"
        assert components[25] == "zb"
        assert components == sorted(components)


class TestDocumentedCollisions:
    def test_between_z_and_zb_collides(self):
        # The Sans & Laurent [19] corner case: both published rules land
        # exactly on the right neighbour.
        scheme = LSDXScheme()
        assert scheme.component_between("z", "zb") == "zb"

    def test_collision_detected_by_document(self):
        doc_scheme = LSDXScheme()
        from repro.xmlmodel.builder import wide_tree

        ldoc = LabeledDocument(wide_tree(25), doc_scheme)  # last child is z
        children = ldoc.document.root.element_children()
        last = children[-1]
        appended = ldoc.append_child(ldoc.document.root, "tail")  # zb
        assert ldoc.format_label(appended).endswith("zb")
        with pytest.raises(LabelCollisionError):
            ldoc.insert_after(last, "boom")  # between z and zb -> zb again

    def test_collision_recorded_when_configured(self):
        from repro.xmlmodel.builder import wide_tree

        ldoc = LabeledDocument(
            wide_tree(25), LSDXScheme(), on_collision="record"
        )
        children = ldoc.document.root.element_children()
        ldoc.append_child(ldoc.document.root, "tail")
        ldoc.insert_after(children[-1], "boom")
        assert ldoc.log.collisions == 1


class TestDeletionReassignment:
    def test_labels_reassigned_after_delete(self):
        # "labels are not persistent and may be reassigned upon deletion"
        ldoc = labeled(figure_tree(), "lsdx")
        children = ldoc.document.root.element_children()
        middle_label = ldoc.format_label(children[1])
        ldoc.delete(children[1])
        assert ldoc.log.relabeled_nodes > 0
        # The freed letter is reused by the compacted following sibling.
        remaining = [
            ldoc.format_label(n) for n in ldoc.document.labeled_nodes()
        ]
        assert middle_label in remaining
        ldoc.verify_order()

    def test_reassignment_can_be_disabled(self):
        ldoc = labeled(figure_tree(), "lsdx", reassign_on_delete=False)
        children = ldoc.document.root.element_children()
        ldoc.delete(children[1])
        assert ldoc.log.relabeled_nodes == 0
        ldoc.verify_order()


class TestComD:
    def test_paper_compression_example(self):
        # Section 3.1.2's worked example, digit for digit.
        assert compress("aaaaabcbcbcdddde") == "5a3(bc)4de"

    def test_decompress_inverts(self):
        for raw in ("aaaaabcbcbcdddde", "b", "zzzz", "abcabcabc", "zb"):
            assert decompress(compress(raw)) == raw

    def test_comd_orders_like_lsdx(self):
        lsdx = labeled(figure_tree(), "lsdx")
        comd = labeled(figure_tree(), "comd")
        assert [tuple(v) for v in lsdx.labels_in_document_order()] == [
            tuple(v) for v in comd.labels_in_document_order()
        ]

    def test_comd_compresses_repetitive_labels(self):
        from repro.schemes.prefix.comd import ComDScheme

        scheme = ComDScheme()
        long_component = "a" * 20 + "b"
        plain = LSDXScheme()
        assert scheme.component_size_bits(long_component) < (
            plain.component_size_bits(long_component)
        )

    def test_comd_rendering_uses_compressed_form(self):
        from repro.schemes.prefix.comd import ComDScheme

        scheme = ComDScheme()
        assert "5a" in scheme.format_component("aaaaab")
