"""QED and CDQS tests: overflow freedom, separators, compactness."""

from conftest import labeled
from repro.data.sample import sample_document
from repro.schemes.prefix.cdqs import CDQSScheme
from repro.schemes.prefix.qed import QEDScheme
from repro.updates.workloads import (
    append_insertions,
    prepend_insertions,
    skewed_insertions,
)


class TestOverflowFreedom:
    def test_qed_never_relabels_under_pressure(self):
        ldoc = labeled(sample_document(), "qed")
        skewed_insertions(ldoc, 150)
        prepend_insertions(ldoc, 100)
        append_insertions(ldoc, 100)
        assert ldoc.log.relabeled_nodes == 0
        assert ldoc.log.overflow_events == 0
        ldoc.verify_order()

    def test_cdqs_never_relabels_under_pressure(self):
        ldoc = labeled(sample_document(), "cdqs")
        skewed_insertions(ldoc, 150)
        prepend_insertions(ldoc, 100)
        append_insertions(ldoc, 100)
        assert ldoc.log.relabeled_nodes == 0
        assert ldoc.log.overflow_events == 0
        ldoc.verify_order()


class TestSeparatorInvariant:
    def test_no_code_ever_contains_zero(self):
        # The two-bit 00 unit is reserved as the separator (section 4);
        # a 0 digit inside a code would corrupt label boundaries.
        for name in ("qed", "cdqs"):
            ldoc = labeled(sample_document(), name)
            skewed_insertions(ldoc, 80)
            for label in ldoc.labels.values():
                for code in label:
                    assert "0" not in code
                    assert code[-1] in "23"

    def test_size_includes_separator_per_component(self):
        scheme = QEDScheme()
        # "32" costs 2 digits x 2 bits + one 2-bit separator.
        assert scheme.component_size_bits("32") == 6
        assert scheme.label_size_bits(("32", "2")) == 6 + 4


class TestPublishedAlgorithms:
    def test_qed_bulk_uses_thirds_recursion_and_division(self):
        scheme = QEDScheme()
        scheme.instruments.reset()
        scheme.initial_child_components(9)
        assert scheme.instruments.recursions > 0
        assert scheme.instruments.divisions > 0

    def test_qed_bulk_matches_reference(self):
        from repro.labels.quaternary import initial_codes

        scheme = QEDScheme()
        for count in (1, 2, 3, 5, 9, 20):
            assert scheme.initial_child_components(count) == initial_codes(count)

    def test_cdqs_bulk_is_compact(self):
        qed = QEDScheme()
        cdqs = CDQSScheme()
        qed_total = sum(map(len, qed.initial_child_components(100)))
        cdqs_total = sum(map(len, cdqs.initial_child_components(100)))
        assert cdqs_total <= qed_total

    def test_cdqs_insertion_codes_are_minimal(self):
        from repro.labels.quaternary import code_between, compact_code_between

        for low, high in (("2", "3"), ("12", "32"), ("222", "223")):
            assert len(compact_code_between(low, high)) <= len(
                code_between(low, high)
            )


class TestLevelAndPaths:
    def test_level_equals_depth(self):
        for name in ("qed", "cdqs"):
            ldoc = labeled(sample_document(), name)
            for node in ldoc.document.labeled_nodes():
                assert ldoc.scheme.level(ldoc.label_of(node)) == node.depth()

    def test_prefix_gives_full_relationships(self):
        ldoc = labeled(sample_document(), "qed")
        nodes = {n.name: n for n in ldoc.document.labeled_nodes()}
        editor = ldoc.label_of(nodes["editor"])
        name = ldoc.label_of(nodes["name"])
        address = ldoc.label_of(nodes["address"])
        assert ldoc.scheme.is_parent(editor, name)
        assert ldoc.scheme.is_sibling(name, address)
        assert ldoc.scheme.is_ancestor(
            ldoc.label_of(nodes["book"]), address
        )
