"""Property tests for Com-D's run-length label compression."""

from hypothesis import given, strategies as st

from repro.schemes.prefix.comd import compress, decompress

positions = st.text(alphabet="abcdefz", min_size=0, max_size=24)


@given(position=positions)
def test_decompress_inverts_compress(position):
    assert decompress(compress(position)) == position


@given(position=positions)
def test_compression_never_loses_letters(position):
    compressed = compress(position)
    letters_in = sorted(position)
    letters_out = sorted(decompress(compressed))
    assert letters_in == letters_out


@given(letter=st.sampled_from("abz"), count=st.integers(min_value=3, max_value=40))
def test_long_runs_compress_to_counted_form(letter, count):
    compressed = compress(letter * count)
    assert compressed == f"{count}{letter}"
    assert len(compressed) < count


@given(group=st.sampled_from(["ab", "bc", "xyz"]),
       count=st.integers(min_value=2, max_value=12))
def test_group_runs_never_expand(group, count):
    compressed = compress(group * count)
    assert decompress(compressed) == group * count
    assert len(compressed) <= len(group) * count


@given(position=positions)
def test_compression_never_expands(position):
    assert len(compress(position)) <= len(position)
