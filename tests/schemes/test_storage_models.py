"""Storage models: the section 4 overflow surfaces, unit-tested."""

import pytest

from repro.errors import OverflowEvent
from repro.schemes.storage import (
    FixedWidthStorage,
    LengthFieldStorage,
    SeparatorStorage,
)


class TestFixedWidth:
    def test_capacity_unsigned(self):
        storage = FixedWidthStorage(width_bits=8)
        assert storage.capacity() == 255
        assert storage.check(255) == 255

    def test_capacity_signed(self):
        storage = FixedWidthStorage(width_bits=8, signed=True)
        assert storage.capacity() == 127
        assert storage.check(-127) == -127

    def test_overflow_raises(self):
        storage = FixedWidthStorage(width_bits=8)
        with pytest.raises(OverflowEvent):
            storage.check(256)

    def test_negative_needs_signed(self):
        with pytest.raises(OverflowEvent):
            FixedWidthStorage(width_bits=8).check(-1)
        FixedWidthStorage(width_bits=8, signed=True).check(-1)

    def test_not_overflow_free(self):
        assert not FixedWidthStorage().overflow_free

    def test_value_bits_constant(self):
        storage = FixedWidthStorage(width_bits=32)
        assert storage.value_bits(0) == 32
        assert storage.value_bits(10**6) == 32


class TestLengthField:
    def test_max_units(self):
        storage = LengthFieldStorage(length_field_bits=4)
        assert storage.max_units() == 15
        assert storage.check_length(15) == 15

    def test_length_overflow_raises(self):
        # "at some point the original fixed length of bits assigned to
        # store the size of the code will be too small" (section 4).
        storage = LengthFieldStorage(length_field_bits=4)
        with pytest.raises(OverflowEvent):
            storage.check_length(16)

    def test_stored_bits_includes_field(self):
        storage = LengthFieldStorage(length_field_bits=8, unit_bits=2)
        assert storage.stored_bits(5) == 8 + 10

    def test_not_overflow_free(self):
        assert not LengthFieldStorage().overflow_free


class TestSeparator:
    def test_overflow_free(self):
        assert SeparatorStorage().overflow_free

    def test_stored_bits_adds_one_separator(self):
        assert SeparatorStorage(separator_bits=2).stored_bits(10) == 12

    def test_no_capacity_surface(self):
        # The whole point: there is nothing to check and nothing to
        # overflow — QED's section 4 contribution.
        storage = SeparatorStorage()
        assert not hasattr(storage, "check_length")
        assert not hasattr(storage, "check")
