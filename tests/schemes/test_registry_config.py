"""make_scheme configuration errors: one exception type for every misuse."""

import pytest

from repro.errors import FrameworkError, ReproError, SchemeConfigurationError
from repro.schemes.registry import available_schemes, make_scheme, scheme_class


class TestUnknownScheme:
    def test_raises_configuration_error(self):
        with pytest.raises(SchemeConfigurationError):
            make_scheme("no-such-scheme")

    def test_message_lists_known_schemes(self):
        with pytest.raises(SchemeConfigurationError) as excinfo:
            make_scheme("no-such-scheme")
        assert "qed" in str(excinfo.value)
        assert excinfo.value.known_schemes == sorted(available_schemes())

    def test_scheme_class_raises_the_same_type(self):
        with pytest.raises(SchemeConfigurationError):
            scheme_class("no-such-scheme")


class TestBadConstructorConfig:
    def test_unknown_kwarg_raises_configuration_error(self):
        with pytest.raises(SchemeConfigurationError) as excinfo:
            make_scheme("dewey", not_a_real_option=3)
        assert "dewey" in str(excinfo.value)
        assert excinfo.value.known_schemes == sorted(available_schemes())

    def test_chains_the_original_type_error(self):
        with pytest.raises(SchemeConfigurationError) as excinfo:
            make_scheme("qed", bogus=True)
        assert isinstance(excinfo.value.__cause__, TypeError)

    def test_valid_kwargs_still_work(self):
        scheme = make_scheme("dewey", component_bits=8)
        assert scheme.component_bits == 8


class TestHierarchy:
    def test_subclass_of_framework_error(self):
        assert issubclass(SchemeConfigurationError, FrameworkError)
        assert issubclass(SchemeConfigurationError, ReproError)

    def test_catchable_as_framework_error(self):
        with pytest.raises(FrameworkError):
            make_scheme("no-such-scheme")
