"""Containment-family dynamics: XRel gaps, QRS precision, Sector budgets."""

import pytest

from conftest import labeled
from repro.data.sample import sample_document
from repro.schemes.containment.qrs import QRSScheme
from repro.schemes.containment.region import RegionScheme
from repro.schemes.containment.sector import SectorScheme
from repro.updates.workloads import skewed_insertions


class TestRegionGaps:
    def test_gaps_absorb_a_few_insertions(self, sample):
        ldoc = labeled(sample, "xrel", gap=16)
        anchor = sample.root.element_children()[-1]
        ldoc.insert_before(anchor, "one")
        assert ldoc.log.relabel_events == 0

    def test_gap_exhaustion_forces_relabel(self, sample):
        # "these solutions ... only postpone the relabelling process
        # until the interval gaps have been consumed"
        ldoc = labeled(sample, "xrel", gap=8)
        result = skewed_insertions(ldoc, 30)
        assert result.relabel_events >= 1
        ldoc.verify_order()

    def test_larger_gaps_postpone_longer(self, sample):
        small = labeled(sample_document(), "xrel", gap=4)
        large = labeled(sample_document(), "xrel", gap=64)
        small_result = skewed_insertions(small, 40)
        large_result = skewed_insertions(large, 40)
        assert large_result.relabel_events <= small_result.relabel_events

    def test_interval_containment(self, sample):
        ldoc = labeled(sample, "xrel")
        nodes = {n.name: n for n in sample.labeled_nodes()}
        book = ldoc.label_of(nodes["book"])
        name = ldoc.label_of(nodes["name"])
        editor = ldoc.label_of(nodes["editor"])
        assert ldoc.scheme.is_ancestor(book, name)
        assert ldoc.scheme.is_parent(editor, name)
        assert not ldoc.scheme.is_ancestor(name, book)

    def test_invalid_gap_rejected(self):
        with pytest.raises(Exception):
            RegionScheme(gap=0)


class TestQRSPrecision:
    def test_midpoints_use_multiplication_not_division(self, sample):
        ldoc = labeled(sample, "qrs")
        anchor = sample.root.element_children()[-1]
        ldoc.insert_before(anchor, "x")
        assert ldoc.scheme.instruments.divisions == 0
        assert ldoc.scheme.instruments.multiplications > 0

    def test_float_precision_exhausts(self, sample):
        # "in practice the solution is similar to an integer
        # representation ... and consequently suffers from the same
        # limitations" — doubles run out after ~50 halvings.
        ldoc = labeled(sample, "qrs")
        result = skewed_insertions(ldoc, 120)
        assert result.relabel_events >= 1
        ldoc.verify_order()

    def test_moderate_insertions_survive(self, sample):
        ldoc = labeled(sample, "qrs")
        result = skewed_insertions(ldoc, 20)
        assert result.relabel_events == 0


class TestSector:
    def test_hybrid_allocation_absorbs_one_insert_per_slot(self, sample):
        ldoc = labeled(sample, "sector")
        anchor = sample.root.element_children()[-1]
        ldoc.insert_before(anchor, "one")
        assert ldoc.log.relabel_events == 0
        ldoc.insert_before(anchor, "two")
        ldoc.verify_order()

    def test_budget_grows_for_wide_documents(self):
        from repro.xmlmodel.builder import wide_tree

        scheme = SectorScheme(unit=8)
        labels = scheme.label_tree(wide_tree(30))
        assert len(labels) == 31
        assert scheme.unit > 8  # the budget had to grow

    def test_deep_documents_force_budget_growth(self):
        from repro.xmlmodel.builder import chain_tree

        scheme = SectorScheme(unit=8, max_depth=4)
        labels = scheme.label_tree(chain_tree(9))
        assert len(labels) == 10

    def test_sector_containment(self, sample):
        ldoc = labeled(sample, "sector")
        nodes = {n.name: n for n in sample.labeled_nodes()}
        assert ldoc.scheme.is_ancestor(
            ldoc.label_of(nodes["book"]), ldoc.label_of(nodes["genre"])
        )
        assert not ldoc.scheme.is_ancestor(
            ldoc.label_of(nodes["title"]), ldoc.label_of(nodes["author"])
        )

    def test_skewed_insertions_eventually_relabel(self, sample):
        ldoc = labeled(sample, "sector")
        result = skewed_insertions(ldoc, 30)
        assert result.relabel_events >= 1
        ldoc.verify_order()
