"""XPath Accelerator (pre/post) tests, including the Figure 1(b) labels."""

import pytest

from conftest import labeled
from repro.data.sample import FIGURE_1B_PRE_POST
from repro.errors import UnsupportedRelationshipError
from repro.schemes.containment.prepost import PrePostLabel, PrePostScheme


class TestFigure1b:
    def test_sample_document_labels_match_figure(self, sample):
        ldoc = labeled(sample, "prepost")
        pairs = [
            (label.pre, label.post)
            for label in ldoc.labels_in_document_order()
        ]
        assert pairs == FIGURE_1B_PRE_POST

    def test_formatting_matches_figure(self, sample):
        ldoc = labeled(sample, "prepost")
        rendered = [ldoc.format_label(n) for n in sample.labeled_nodes()]
        assert rendered[0] == "0,9"
        assert rendered[-1] == "9,6"


class TestRelationships:
    def test_dietz_ancestor_criterion(self, sample):
        # "node u is an ancestor of node v iff u occurs before v in the
        # preorder traversal and after v in the postorder traversal"
        ldoc = labeled(sample, "prepost")
        book = ldoc.label_of(sample.root)
        name = next(
            ldoc.label_of(n) for n in sample.labeled_nodes() if n.name == "name"
        )
        assert ldoc.scheme.is_ancestor(book, name)
        assert not ldoc.scheme.is_ancestor(name, book)

    def test_parent_needs_level(self, sample):
        ldoc = labeled(sample, "prepost")
        editor = next(
            ldoc.label_of(n) for n in sample.labeled_nodes()
            if n.name == "editor"
        )
        name = next(
            ldoc.label_of(n) for n in sample.labeled_nodes() if n.name == "name"
        )
        book = ldoc.label_of(sample.root)
        assert ldoc.scheme.is_parent(editor, name)
        assert not ldoc.scheme.is_parent(book, name)

    def test_sibling_unsupported(self, sample):
        ldoc = labeled(sample, "prepost")
        values = ldoc.labels_in_document_order()
        with pytest.raises(UnsupportedRelationshipError):
            ldoc.scheme.is_sibling(values[1], values[3])

    def test_level_stored(self, sample):
        ldoc = labeled(sample, "prepost")
        for node in sample.labeled_nodes():
            assert ldoc.scheme.level(ldoc.label_of(node)) == node.depth()


class TestDynamics:
    def test_every_insertion_relabels_globally(self, sample):
        ldoc = labeled(sample, "prepost")
        ldoc.prepend_child(sample.root, "zero")
        # All ten original nodes except none keep their pre rank: the new
        # first child shifts everything after it.
        assert ldoc.log.relabel_events == 1
        assert ldoc.log.relabeled_nodes >= 9
        ldoc.verify_order()

    def test_append_still_relabels_posts(self, sample):
        ldoc = labeled(sample, "prepost")
        ldoc.append_child(sample.root, "last")
        # Appending shifts ancestors' postorder ranks.
        assert ldoc.log.relabeled_nodes >= 1
        ldoc.verify_order()

    def test_fixed_size_labels(self, sample):
        scheme = PrePostScheme(width_bits=32)
        labels = scheme.label_tree(sample)
        sizes = {scheme.label_size_bits(v) for v in labels.values()}
        assert sizes == {96}

    def test_label_type(self, sample):
        ldoc = labeled(sample, "prepost")
        assert isinstance(ldoc.label_of(sample.root), PrePostLabel)
