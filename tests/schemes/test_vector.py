"""Vector scheme tests: gradient order, mediants, persistence, storage."""

import pytest

from conftest import labeled
from repro.data.sample import sample_document
from repro.errors import UnsupportedRelationshipError
from repro.strategies.vector_keys import (
    HIGH_BOUND,
    LOW_BOUND,
    gradient_compare,
    key_size_bits,
    mediant,
    validate_key,
)
from repro.updates.workloads import skewed_insertions


class TestGradientOrder:
    def test_cross_multiplication_identity(self):
        # "G(A) > G(B) iff y1x2 > x1y2"
        assert gradient_compare((1, 2), (1, 3)) == -1
        assert gradient_compare((1, 3), (1, 2)) == 1
        assert gradient_compare((2, 4), (1, 2)) == 0

    def test_bounds(self):
        assert gradient_compare(LOW_BOUND, HIGH_BOUND) == -1
        assert gradient_compare(LOW_BOUND, (1, 1)) == -1
        assert gradient_compare((1, 1), HIGH_BOUND) == -1

    def test_mediant_strictly_between(self):
        left, right = (3, 1), (2, 5)
        low, high = sorted([left, right], key=lambda v: (v[1], v[0]))
        mid = mediant(left, right)
        assert gradient_compare(left, mid) == -1 or gradient_compare(mid, left) == -1
        # Order left by gradient explicitly:
        first, second = (
            (left, right)
            if gradient_compare(left, right) < 0
            else (right, left)
        )
        mid = mediant(first, second)
        assert gradient_compare(first, mid) < 0 < gradient_compare(second, mid)

    def test_mediant_chain_is_monotone(self):
        current = (1, 1)
        previous = LOW_BOUND
        for _ in range(50):
            new = mediant(previous, current)
            assert gradient_compare(previous, new) < 0
            assert gradient_compare(new, current) < 0
            current = new

    def test_validate_key(self):
        validate_key((3, 2))
        with pytest.raises(Exception):
            validate_key((0, 0))
        with pytest.raises(Exception):
            validate_key((-1, 2))


class TestVectorScheme:
    def test_order_and_ancestorship(self, sample):
        ldoc = labeled(sample, "vector")
        ldoc.verify_order()
        nodes = {n.name: n for n in sample.labeled_nodes()}
        assert ldoc.scheme.is_ancestor(
            ldoc.label_of(nodes["book"]), ldoc.label_of(nodes["name"])
        )
        assert not ldoc.scheme.is_ancestor(
            ldoc.label_of(nodes["name"]), ldoc.label_of(nodes["book"])
        )

    def test_level_and_parent_unsupported(self, sample):
        # Figure 7: Level Enc. N and XPath Eval. P for the vector scheme.
        ldoc = labeled(sample, "vector")
        label = ldoc.label_of(sample.root)
        with pytest.raises(UnsupportedRelationshipError):
            ldoc.scheme.level(label)
        with pytest.raises(UnsupportedRelationshipError):
            ldoc.scheme.is_parent(label, label)

    def test_persistent_under_heavy_skew(self, sample):
        ldoc = labeled(sample, "vector")
        skewed_insertions(ldoc, 300)
        assert ldoc.log.relabeled_nodes == 0
        assert ldoc.log.overflow_events == 0
        ldoc.verify_order()

    def test_no_divisions_ever(self, sample):
        ldoc = labeled(sample, "vector")
        skewed_insertions(ldoc, 50)
        ldoc.verify_order()  # comparisons cross-multiply
        assert ldoc.scheme.instruments.divisions == 0
        assert ldoc.scheme.instruments.multiplications > 0

    def test_bulk_is_recursive(self, sample):
        ldoc = labeled(sample, "vector")
        assert ldoc.scheme.instruments.recursions > 0

    def test_skewed_growth_is_sublinear(self, sample):
        # The section 5 claim: vector grows "much slower" under skew.
        ldoc = labeled(sample, "vector")
        result = skewed_insertions(ldoc, 256)
        # 256 insertions; component values ~256 fit in two varint bytes.
        assert result.final_insert_bits <= 96

    def test_storage_uses_varints(self):
        assert key_size_bits((5, 10)) == 16
        assert key_size_bits((500, 1)) == 24
        assert key_size_bits((1 << 22, 1)) == 80
