"""Extension schemes: Cohen bit-codes, DDE, Prime (survey sections 3/6)."""

import pytest

from conftest import label_sequence, labeled
from repro.data.sample import sample_document
from repro.schemes.prefix.cohen import CohenScheme
from repro.schemes.prefix.dde import DDEScheme
from repro.schemes.prime.prime import PrimeScheme, primes
from repro.updates.workloads import skewed_insertions
from repro.xmlmodel.builder import wide_tree


class TestCohen:
    def test_one_bit_growth_codes(self):
        scheme = CohenScheme(growth=1)
        assert scheme.initial_child_components(4) == ["0", "10", "110", "1110"]

    def test_double_bit_growth_codes(self):
        scheme = CohenScheme(growth=2)
        assert scheme.initial_child_components(3) == ["00", "1100", "111100"]

    def test_codes_are_ordered(self):
        scheme = CohenScheme()
        codes = scheme.initial_child_components(10)
        assert codes == sorted(codes)

    def test_append_does_not_relabel(self):
        ldoc = labeled(sample_document(), "cohen")
        ldoc.append_child(ldoc.document.root, "tail")
        assert ldoc.log.relabeled_nodes == 0
        ldoc.verify_order()

    def test_middle_insert_relabels(self):
        # The reason the survey excludes the scheme from Figure 7.
        ldoc = labeled(sample_document(), "cohen")
        anchor = ldoc.document.root.element_children()[0]
        ldoc.insert_before(anchor, "front")
        assert ldoc.log.relabel_events == 1
        ldoc.verify_order()

    def test_label_sizes_grow_linearly_with_position(self):
        # "significant label sizes ... for even modest document sizes"
        ldoc = labeled(wide_tree(50), "cohen")
        sizes = [
            ldoc.scheme.label_size_bits(v)
            for v in ldoc.labels_in_document_order()
        ]
        assert sizes[-1] > sizes[1] + 40

    def test_invalid_growth_rejected(self):
        with pytest.raises(Exception):
            CohenScheme(growth=3)


class TestDDE:
    def test_unupdated_labels_print_like_dewey(self):
        from repro.data.sample import figure3_tree, FIGURE_3_DEWEY_LABELS

        ldoc = labeled(figure3_tree(), "dde")
        assert label_sequence(ldoc) == FIGURE_3_DEWEY_LABELS

    def test_mediant_insertion_never_relabels(self):
        ldoc = labeled(sample_document(), "dde")
        result = skewed_insertions(ldoc, 100)
        assert result.relabel_events == 0
        ldoc.verify_order()

    def test_updated_components_render_as_fractions(self):
        ldoc = labeled(sample_document(), "dde")
        children = ldoc.document.root.element_children()
        node = ldoc.insert_after(children[0], "frac")
        assert "/" in ldoc.format_label(node)

    def test_no_divisions(self):
        ldoc = labeled(sample_document(), "dde")
        skewed_insertions(ldoc, 30)
        assert ldoc.scheme.instruments.divisions == 0

    def test_full_relationships(self):
        ldoc = labeled(sample_document(), "dde")
        nodes = {n.name: n for n in ldoc.document.labeled_nodes()}
        assert ldoc.scheme.is_parent(
            ldoc.label_of(nodes["editor"]), ldoc.label_of(nodes["name"])
        )
        assert ldoc.scheme.is_sibling(
            ldoc.label_of(nodes["name"]), ldoc.label_of(nodes["address"])
        )
        assert ldoc.scheme.level(ldoc.label_of(nodes["name"])) == 3


class TestPrime:
    def test_prime_generator(self):
        source = primes()
        assert [next(source) for _ in range(8)] == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_ancestor_by_divisibility(self):
        ldoc = labeled(sample_document(), "prime")
        nodes = {n.name: n for n in ldoc.document.labeled_nodes()}
        book = ldoc.label_of(nodes["book"])
        name = ldoc.label_of(nodes["name"])
        assert ldoc.scheme.is_ancestor(book, name)
        assert name.product % book.product == 0
        assert not ldoc.scheme.is_ancestor(name, book)

    def test_parent_divides_out_own_prime(self):
        ldoc = labeled(sample_document(), "prime")
        nodes = {n.name: n for n in ldoc.document.labeled_nodes()}
        editor = ldoc.label_of(nodes["editor"])
        name = ldoc.label_of(nodes["name"])
        assert ldoc.scheme.is_parent(editor, name)
        assert name.product == editor.product * name.self_prime

    def test_sibling_same_parent_product(self):
        ldoc = labeled(sample_document(), "prime")
        nodes = {n.name: n for n in ldoc.document.labeled_nodes()}
        assert ldoc.scheme.is_sibling(
            ldoc.label_of(nodes["name"]), ldoc.label_of(nodes["address"])
        )

    def test_insert_renumbers_sc_table(self):
        # The SC (simultaneous congruence) order keys shift for every
        # node after the insertion point — the scheme's update weakness.
        ldoc = labeled(sample_document(), "prime")
        ldoc.prepend_child(ldoc.document.root, "front")
        assert ldoc.log.relabeled_nodes >= 9
        ldoc.verify_order()

    def test_products_stay_stable_across_sc_renumbering(self):
        ldoc = labeled(sample_document(), "prime")
        nodes = {n.name: n for n in ldoc.document.labeled_nodes()}
        before = ldoc.label_of(nodes["name"]).product
        ldoc.prepend_child(ldoc.document.root, "front")
        assert ldoc.label_of(nodes["name"]).product == before
