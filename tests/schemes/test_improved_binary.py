"""ImprovedBinary tests, including the Figure 6 labels."""

from conftest import label_sequence, labeled
from repro.data.sample import (
    FIGURE_6_INITIAL_LABELS,
    FIGURE_6_INSERTED,
    FIGURE_6_SHAPE,
)
from repro.schemes.prefix.improved_binary import ImprovedBinaryScheme
from repro.xmlmodel.builder import tree_from_shape


def figure6_document():
    return tree_from_shape(FIGURE_6_SHAPE)


class TestFigure6:
    def test_initial_labels(self):
        ldoc = labeled(figure6_document(), "improved-binary")
        assert label_sequence(ldoc) == FIGURE_6_INITIAL_LABELS

    def test_inserted_labels_match_figure(self):
        ldoc = labeled(figure6_document(), "improved-binary")
        children = ldoc.document.root.element_children()
        node_01, node_0101, node_011 = children

        before = ldoc.prepend_child(node_0101, "new")
        assert ldoc.format_label(before) == FIGURE_6_INSERTED[
            "before_first_under_0101"
        ]

        after = ldoc.append_child(node_0101, "new")
        assert ldoc.format_label(after) == FIGURE_6_INSERTED[
            "after_last_under_0101"
        ]

        grand = node_011.element_children()
        between = ldoc.insert_after(grand[0], "new")
        assert ldoc.format_label(between) == FIGURE_6_INSERTED[
            "between_011.01_and_011.011"
        ]

        root_new_1 = ldoc.insert_after(node_01, "new")
        assert ldoc.format_label(root_new_1) == FIGURE_6_INSERTED[
            "between_root_children_01_and_0101"
        ]

        root_new_2 = ldoc.insert_after(node_0101, "new")
        assert ldoc.format_label(root_new_2) == FIGURE_6_INSERTED[
            "between_root_children_0101_and_011"
        ]

        assert ldoc.log.relabeled_nodes == 0
        ldoc.verify_order()


class TestPublishedAlgorithm:
    def test_bulk_uses_recursion_and_division(self):
        scheme = ImprovedBinaryScheme()
        scheme.instruments.reset()
        scheme.initial_child_components(9)
        assert scheme.instruments.recursions > 0
        assert scheme.instruments.divisions > 0

    def test_bulk_matches_reference(self):
        from repro.labels.bitstring import initial_codes

        scheme = ImprovedBinaryScheme()
        for count in (1, 2, 3, 4, 5, 8, 13):
            assert scheme.initial_child_components(count) == initial_codes(count)

    def test_one_bit_growth_under_one_sided_insertion(self):
        # "repeated insertions before the first sibling node and after
        # the last sibling node has a bit-growth rate of 1"
        ldoc = labeled(figure6_document(), "improved-binary")
        root = ldoc.document.root
        sizes = []
        for _ in range(10):
            node = ldoc.append_child(root, "tail")
            sizes.append(len(ldoc.label_of(node)[-1]))
        deltas = [b - a for a, b in zip(sizes, sizes[1:])]
        assert all(delta == 1 for delta in deltas)

    def test_overflow_of_length_field(self):
        ldoc = labeled(
            figure6_document(), "improved-binary", length_field_bits=4
        )
        root = ldoc.document.root
        for _ in range(30):
            ldoc.append_child(root, "tail")
        assert ldoc.log.overflow_events >= 1
        ldoc.verify_order()

    def test_no_relabeling_under_mixed_insertions(self):
        ldoc = labeled(figure6_document(), "improved-binary")
        root = ldoc.document.root
        anchor = root.element_children()[1]
        for _ in range(20):
            ldoc.insert_before(anchor, "mid")
        assert ldoc.log.relabeled_nodes == 0
