"""Unit tests for the serializer, including parse/serialize round trips."""

import pytest

from repro.data.sample import SAMPLE_XML
from repro.errors import TreeStructureError
from repro.xmlmodel.builder import attribute, build_document, element, text
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import (
    XMLSerializer,
    escape_attribute,
    escape_text,
    serialize,
    serialize_node,
)


class TestEscaping:
    def test_text_escapes(self):
        assert escape_text("a<b>&c") == "a&lt;b&gt;&amp;c"

    def test_attribute_escapes_quotes(self):
        assert escape_attribute('say "hi" & <go>') == (
            "say &quot;hi&quot; &amp; &lt;go&gt;"
        )


class TestSerialization:
    def test_empty_element_self_closes(self):
        assert serialize(parse("<a/>")) == "<a/>"

    def test_attributes_rendered(self):
        assert serialize(parse('<a x="1" y="2"/>')) == '<a x="1" y="2"/>'

    def test_text_content(self):
        assert serialize(parse("<a>hi</a>")) == "<a>hi</a>"

    def test_comment_and_pi(self):
        xml = "<a><!--c--><?t d?></a>"
        assert serialize(parse(xml)) == xml

    def test_escapes_round_trip(self):
        xml = "<a>&lt;tag&gt; &amp; text</a>"
        assert serialize(parse(xml)) == xml

    def test_attribute_node_cannot_serialize_alone(self):
        doc = build_document(element("a", attribute("x", "1")))
        with pytest.raises(TreeStructureError):
            serialize_node(doc.root.attributes()[0])

    def test_document_without_root_rejected(self):
        from repro.xmlmodel.tree import Document

        with pytest.raises(TreeStructureError):
            serialize(Document())


class TestRoundTrip:
    @pytest.mark.parametrize("xml", [
        "<a/>",
        "<a><b/><c/></a>",
        '<a id="1"><b>text</b><c x="y"/>tail</a>',
        "<root><child>one</child><child>two</child></root>",
        "<a>pre<b>mid</b>post</a>",
    ])
    def test_parse_serialize_fixpoint(self, xml):
        assert serialize(parse(xml)) == xml

    def test_double_round_trip_sample(self):
        once = serialize(parse(SAMPLE_XML))
        twice = serialize(parse(once))
        assert once == twice

    def test_random_documents_round_trip(self):
        from repro.xmlmodel.generator import random_document

        for seed in range(5):
            doc = random_document(60, seed=seed)
            rendered = serialize(doc)
            assert serialize(parse(rendered)) == rendered


class TestPrettyPrinting:
    def test_indented_output(self):
        doc = parse("<a><b><c/></b></a>")
        pretty = XMLSerializer(indent=2).serialize(doc)
        assert pretty == "<a>\n  <b>\n    <c/>\n  </b>\n</a>\n"

    def test_text_elements_not_broken(self):
        doc = parse("<a><b>keep me inline</b></a>")
        pretty = XMLSerializer(indent=2).serialize(doc)
        assert "<b>keep me inline</b>" in pretty

    def test_pretty_output_reparses_equivalently(self):
        doc = parse(SAMPLE_XML)
        pretty = XMLSerializer(indent=4).serialize(doc)
        names = [n.name for n in parse(pretty).labeled_nodes()]
        assert names == [n.name for n in doc.labeled_nodes()]
