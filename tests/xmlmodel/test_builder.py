"""Unit tests for the programmatic tree builders."""

import pytest

from repro.errors import TreeStructureError
from repro.xmlmodel.builder import (
    attribute,
    balanced_tree,
    build_document,
    chain_tree,
    comment,
    element,
    processing_instruction,
    shape_of,
    text,
    tree_from_shape,
    wide_tree,
)
from repro.xmlmodel.serializer import serialize


class TestSpecBuilder:
    def test_nested_document(self):
        doc = build_document(
            element("book",
                    attribute("genre", "Fantasy"),
                    element("title", text("Wayfarer")))
        )
        assert serialize(doc) == (
            '<book genre="Fantasy"><title>Wayfarer</title></book>'
        )

    def test_string_children_become_text(self):
        doc = build_document(element("a", "hello"))
        assert doc.root.text_value() == "hello"

    def test_comment_and_pi_specs(self):
        doc = build_document(element("a", comment("c"), processing_instruction("t", "d")))
        assert serialize(doc) == "<a><!--c--><?t d?></a>"

    def test_non_element_root_rejected(self):
        with pytest.raises(TreeStructureError):
            build_document(text("nope"))


class TestShapes:
    def test_tree_from_shape_counts(self):
        doc = tree_from_shape([[None, None], [None], [None, None]])
        assert doc.labeled_size() == 9

    def test_shape_of_inverts_tree_from_shape(self):
        shape = [[None, [None]], None, [None, None, None]]
        assert shape_of(tree_from_shape(shape)) == shape

    def test_empty_shape_is_just_root(self):
        doc = tree_from_shape([])
        assert doc.labeled_size() == 1

    def test_balanced_tree_size(self):
        doc = balanced_tree(depth=3, fanout=2)
        assert doc.labeled_size() == 1 + 2 + 4 + 8

    def test_balanced_tree_zero_depth(self):
        assert balanced_tree(0, 5).labeled_size() == 1

    def test_balanced_tree_rejects_negative(self):
        with pytest.raises(TreeStructureError):
            balanced_tree(-1, 2)

    def test_wide_tree(self):
        doc = wide_tree(17)
        assert len(doc.root.element_children()) == 17

    def test_chain_tree_depth(self):
        doc = chain_tree(6)
        node = doc.root
        depth = 0
        while node.element_children():
            node = node.element_children()[0]
            depth += 1
        assert depth == 6

    def test_chain_tree_zero(self):
        assert chain_tree(0).labeled_size() == 1
