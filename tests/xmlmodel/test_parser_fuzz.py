"""Parser robustness: arbitrary input either parses or raises cleanly."""

from hypothesis import given, strategies as st

from repro.errors import XMLSyntaxError
from repro.xmlmodel.parser import parse

#: Arbitrary printable soup, biased toward markup characters.
soup = st.text(
    alphabet=st.sampled_from(list("<>/=&;'\"abcx123 \n\t![]-?")),
    max_size=60,
)


@given(text=soup)
def test_parser_never_crashes(text):
    """Any input yields a Document or an XMLSyntaxError — nothing else."""
    try:
        document = parse(text)
    except XMLSyntaxError:
        return
    # If it parsed, the result must be a valid tree.
    document.validate()
    assert document.root is not None


@given(text=soup)
def test_parse_errors_have_locations(text):
    try:
        parse(text)
    except XMLSyntaxError as error:
        assert error.line >= 0
        assert error.column >= 0


@given(inner=st.text(
    alphabet=st.sampled_from(list("<>&'\" abc\n")), max_size=30,
))
def test_escaped_content_always_survives(inner):
    """Any text, escaped properly, parses back to itself."""
    from repro.xmlmodel.serializer import escape_text

    document = parse(f"<a>{escape_text(inner)}</a>")
    if inner.strip():
        assert document.root.text_value() == inner
