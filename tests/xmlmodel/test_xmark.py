"""The XMark-style generator and its bidding update stream."""

import pytest

from conftest import labeled
from repro.axes.xpath import xpath
from repro.xmlmodel.serializer import serialize
from repro.xmlmodel.xmark import XMarkGenerator, bidding_stream, xmark_document


class TestGeneration:
    def test_deterministic(self):
        assert serialize(xmark_document(scale=0.5, seed=3)) == serialize(
            xmark_document(scale=0.5, seed=3)
        )

    def test_scale_grows_linearly_ish(self):
        small = xmark_document(scale=0.5).labeled_size()
        large = xmark_document(scale=2.0).labeled_size()
        assert large > 2 * small

    def test_site_shape(self):
        document = xmark_document(scale=0.5)
        top_level = [n.name for n in document.root.element_children()]
        assert top_level == [
            "regions", "categories", "people", "open_auctions",
            "closed_auctions",
        ]

    def test_items_have_descriptions(self):
        ldoc = labeled(xmark_document(scale=0.5), "qed")
        items = xpath(ldoc, "//item")
        assert items
        with_description = xpath(ldoc, "//item/description/parlist/listitem")
        assert with_description

    def test_people_queryable(self):
        ldoc = labeled(xmark_document(scale=0.5), "qed")
        people = xpath(ldoc, "//person[@id='person0']/name")
        assert len(people) == 1

    def test_documents_validate(self):
        xmark_document(scale=1.5, seed=9).validate()

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            XMarkGenerator(scale=0)


class TestBiddingStream:
    def test_bids_append_to_auctions(self):
        ldoc = labeled(xmark_document(scale=0.5), "cdqs")
        before = len(xpath(ldoc, "//bidder"))
        result = bidding_stream(ldoc, 30, seed=1)
        assert result.operations == 30
        assert len(xpath(ldoc, "//bidder")) == before + 30
        ldoc.verify_order()

    def test_hot_auction_concentrates_bids(self):
        ldoc = labeled(xmark_document(scale=0.5), "cdqs")
        bidding_stream(ldoc, 20, hot_auction=0)
        auctions = xpath(ldoc, "//open_auction")
        hot_bidders = [
            c for c in auctions[0].element_children() if c.name == "bidder"
        ]
        assert len(hot_bidders) >= 20

    def test_persistent_scheme_absorbs_bids(self):
        ldoc = labeled(xmark_document(scale=0.5), "qed")
        result = bidding_stream(ldoc, 40, hot_auction=0)
        assert result.relabeled_nodes == 0
        assert result.overflow_events == 0

    def test_global_scheme_relabels_per_bid(self):
        ldoc = labeled(xmark_document(scale=0.5), "prepost")
        result = bidding_stream(ldoc, 10, hot_auction=0)
        assert result.relabel_events >= 10

    def test_stream_is_deterministic(self):
        first = labeled(xmark_document(scale=0.5), "cdqs")
        second = labeled(xmark_document(scale=0.5), "cdqs")
        bidding_stream(first, 15, seed=7)
        bidding_stream(second, 15, seed=7)
        assert first.labels_in_document_order() == (
            second.labels_in_document_order()
        )
