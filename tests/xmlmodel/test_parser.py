"""Unit tests for the XML parser."""

import pytest

from repro.data.sample import SAMPLE_XML
from repro.errors import XMLSyntaxError
from repro.xmlmodel.parser import parse, parse_fragment
from repro.xmlmodel.tree import NodeKind


class TestBasicParsing:
    def test_sample_document_shape(self):
        doc = parse(SAMPLE_XML)
        names = [n.name for n in doc.labeled_nodes()]
        assert names == [
            "book", "title", "genre", "author", "publisher",
            "editor", "name", "address", "edition", "year",
        ]

    def test_simple_element(self):
        doc = parse("<a/>")
        assert doc.root.name == "a"
        assert doc.root.is_leaf

    def test_nested_elements(self):
        doc = parse("<a><b><c/></b></a>")
        assert doc.root.children[0].children[0].name == "c"

    def test_text_content(self):
        doc = parse("<a>hello</a>")
        assert doc.root.text_value() == "hello"

    def test_attributes_in_order(self):
        doc = parse('<a x="1" y="2"/>')
        assert [(attr.name, attr.value) for attr in doc.root.attributes()] == [
            ("x", "1"), ("y", "2"),
        ]

    def test_single_quoted_attribute(self):
        doc = parse("<a x='v'/>")
        assert doc.root.attribute("x").value == "v"

    def test_whitespace_only_text_dropped_by_default(self):
        doc = parse("<a>\n  <b/>\n</a>")
        assert all(not child.is_text for child in doc.root.children)

    def test_keep_whitespace(self):
        doc = parse("<a>\n  <b/>\n</a>", keep_whitespace=True)
        assert any(child.is_text for child in doc.root.children)

    def test_xml_declaration_skipped(self):
        doc = parse('<?xml version="1.0" encoding="UTF-8"?><a/>')
        assert doc.root.name == "a"

    def test_doctype_skipped(self):
        doc = parse("<!DOCTYPE a SYSTEM 'x'><a/>")
        assert doc.root.name == "a"

    def test_leading_comment_skipped(self):
        doc = parse("<!-- preamble --><a/>")
        assert doc.root.name == "a"


class TestContentKinds:
    def test_comment_node(self):
        doc = parse("<a><!-- note --></a>")
        comment = doc.root.children[0]
        assert comment.kind is NodeKind.COMMENT
        assert comment.value == " note "

    def test_processing_instruction(self):
        doc = parse("<a><?target data here?></a>")
        pi = doc.root.children[0]
        assert pi.kind is NodeKind.PROCESSING_INSTRUCTION
        assert pi.name == "target"
        assert pi.value == "data here"

    def test_cdata_becomes_text(self):
        doc = parse("<a><![CDATA[<raw> & stuff]]></a>")
        assert doc.root.text_value() == "<raw> & stuff"

    def test_mixed_content_order(self):
        doc = parse("<a>one<b/>two</a>")
        kinds = [child.kind for child in doc.root.children]
        assert kinds == [NodeKind.TEXT, NodeKind.ELEMENT, NodeKind.TEXT]


class TestEntities:
    @pytest.mark.parametrize("entity,expected", [
        ("&amp;", "&"), ("&lt;", "<"), ("&gt;", ">"),
        ("&apos;", "'"), ("&quot;", '"'),
    ])
    def test_builtin_entities(self, entity, expected):
        assert parse(f"<a>{entity}</a>").root.text_value() == expected

    def test_decimal_character_reference(self):
        assert parse("<a>&#65;</a>").root.text_value() == "A"

    def test_hex_character_reference(self):
        assert parse("<a>&#x41;</a>").root.text_value() == "A"

    def test_entity_in_attribute(self):
        doc = parse('<a x="a&amp;b"/>')
        assert doc.root.attribute("x").value == "a&b"

    def test_unknown_entity_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&nope;</a>")

    def test_bad_character_reference_rejected(self):
        with pytest.raises(XMLSyntaxError):
            parse("<a>&#xzz;</a>")


class TestErrors:
    @pytest.mark.parametrize("bad", [
        "",
        "   ",
        "just text",
        "<a>",
        "<a></b>",
        "<a><b></a></b>",
        "<a x=1/>",
        '<a x="1" x="2"/>',
        "<a/><b/>",
        "<a><!-- unterminated </a>",
        "<a>&unterminated</a>",
        '<a x="<"/>',
        "<1bad/>",
    ])
    def test_malformed_inputs_raise(self, bad):
        with pytest.raises(XMLSyntaxError):
            parse(bad)

    def test_error_carries_location(self):
        try:
            parse("<a>\n<b></c>\n</a>")
        except XMLSyntaxError as error:
            assert error.line == 2
        else:  # pragma: no cover
            pytest.fail("expected a syntax error")


class TestFragment:
    def test_parse_fragment_returns_root(self):
        node = parse_fragment("<x><y/></x>")
        assert node.name == "x"
        assert node.children[0].name == "y"
