"""Property-based fuzzing of the parse/serialize pipeline."""

from hypothesis import given, strategies as st

from repro.xmlmodel.builder import attribute, build_document, element, text
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize

names = st.sampled_from(
    ["a", "b", "item", "x1", "long-name", "ns:tag", "_private"]
)
#: Text content without leading/trailing whitespace ambiguity: the
#: parser drops whitespace-only nodes and the builder keeps text as-is,
#: so fuzzed text is kept printable and non-marginal.
texts = st.text(
    alphabet=st.characters(
        min_codepoint=33, max_codepoint=126,
        blacklist_characters="<>&\"'",
    ),
    min_size=1,
    max_size=12,
)
attr_values = st.text(
    alphabet=st.characters(min_codepoint=32, max_codepoint=126,
                           blacklist_characters="<"),
    max_size=12,
)


@st.composite
def element_specs(draw, depth=0):
    """Random element spec trees of bounded depth and width."""
    name = draw(names)
    children = []
    for _ in range(draw(st.integers(min_value=0, max_value=2))):
        children.append(attribute(draw(names) + str(len(children)),
                                  draw(attr_values)))
    if depth < 3:
        for _ in range(draw(st.integers(min_value=0, max_value=3))):
            if draw(st.booleans()):
                children.append(draw(element_specs(depth=depth + 1)))
            else:
                children.append(text(draw(texts)))
    return element(name, *children)


@given(spec=element_specs())
def test_serialize_parse_preserves_structure(spec):
    document = build_document(spec)
    document.validate()
    reparsed = parse(serialize(document))
    reparsed.validate()
    original_shape = [
        (node.name, node.kind.value, node.depth(),
         node.value if node.is_attribute else None)
        for node in document.labeled_nodes()
    ]
    reparsed_shape = [
        (node.name, node.kind.value, node.depth(),
         node.value if node.is_attribute else None)
        for node in reparsed.labeled_nodes()
    ]
    assert reparsed_shape == original_shape


@given(spec=element_specs())
def test_serialization_is_a_fixpoint_after_one_round(spec):
    document = build_document(spec)
    once = serialize(parse(serialize(document)))
    twice = serialize(parse(once))
    assert once == twice


@given(value=texts)
def test_text_escaping_round_trips(value):
    document = build_document(element("t", text(value)))
    assert parse(serialize(document)).root.text_value() == value


@given(value=attr_values)
def test_attribute_escaping_round_trips(value):
    document = build_document(element("t", attribute("a", value)))
    assert parse(serialize(document)).root.attribute("a").value == value
