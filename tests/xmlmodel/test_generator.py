"""Unit tests for the synthetic document generator."""

from repro.xmlmodel.generator import (
    DocumentGenerator,
    GeneratorProfile,
    random_document,
)
from repro.xmlmodel.serializer import serialize


class TestDeterminism:
    def test_same_seed_same_document(self):
        assert serialize(random_document(100, seed=5)) == serialize(
            random_document(100, seed=5)
        )

    def test_different_seeds_differ(self):
        assert serialize(random_document(100, seed=1)) != serialize(
            random_document(100, seed=2)
        )


class TestShapeControls:
    def test_size_roughly_honoured(self):
        doc = random_document(200, seed=3)
        assert 50 <= doc.labeled_size() <= 260

    def test_small_budget(self):
        doc = random_document(1, seed=0)
        assert doc.labeled_size() >= 1

    def test_deep_profile_goes_deeper_than_wide(self):
        deep = DocumentGenerator(seed=4, profile=GeneratorProfile.deep()).generate(150)
        wide = DocumentGenerator(seed=4, profile=GeneratorProfile.wide()).generate(150)

        def max_depth(document):
            return max(node.depth() for node in document.labeled_nodes())

        assert max_depth(deep) > max_depth(wide)

    def test_wide_profile_has_wide_fanout(self):
        wide = DocumentGenerator(seed=9, profile=GeneratorProfile.wide()).generate(150)
        widest = max(
            len(node.element_children()) for node in wide.labeled_nodes()
            if node.is_element
        )
        assert widest > 5

    def test_bibliography_profile_has_attributes(self):
        doc = DocumentGenerator(
            seed=2, profile=GeneratorProfile.bibliography()
        ).generate(150)
        attributes = [n for n in doc.labeled_nodes() if n.is_attribute]
        assert attributes

    def test_generated_documents_validate(self):
        for seed in range(4):
            random_document(80, seed=seed).validate()
