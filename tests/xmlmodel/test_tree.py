"""Unit tests for the ordered tree model."""

import pytest

from repro.errors import TreeStructureError
from repro.xmlmodel.tree import Document, NodeKind, walk


def small_document():
    doc = Document()
    root = doc.new_element("root")
    doc.set_root(root)
    first = doc.new_element("first")
    second = doc.new_element("second")
    root.append_child(first)
    root.append_child(second)
    first.append_child(doc.new_text("hello"))
    return doc, root, first, second


class TestNodeBasics:
    def test_node_ids_are_unique_and_increasing(self):
        doc = Document()
        nodes = [doc.new_element(f"n{i}") for i in range(5)]
        ids = [node.node_id for node in nodes]
        assert ids == sorted(ids)
        assert len(set(ids)) == 5

    def test_element_requires_name(self):
        doc = Document()
        with pytest.raises(TreeStructureError):
            doc.new_node(NodeKind.ELEMENT)

    def test_attribute_requires_name(self):
        doc = Document()
        with pytest.raises(TreeStructureError):
            doc.new_node(NodeKind.ATTRIBUTE)

    def test_kind_predicates(self):
        doc = Document()
        assert doc.new_element("e").is_element
        assert doc.new_attribute("a", "v").is_attribute
        assert doc.new_text("t").is_text

    def test_labeled_kinds(self):
        assert NodeKind.ELEMENT.is_labeled
        assert NodeKind.ATTRIBUTE.is_labeled
        assert not NodeKind.TEXT.is_labeled
        assert not NodeKind.COMMENT.is_labeled
        assert not NodeKind.PROCESSING_INSTRUCTION.is_labeled


class TestStructure:
    def test_depth(self):
        doc, root, first, second = small_document()
        assert root.depth() == 0
        assert first.depth() == 1
        grand = doc.new_element("grand")
        first.append_child(grand)
        assert grand.depth() == 2

    def test_ancestors_and_oracle(self):
        doc, root, first, second = small_document()
        grand = doc.new_element("grand")
        first.append_child(grand)
        assert [a.name for a in grand.ancestors()] == ["first", "root"]
        assert root.is_ancestor_of(grand)
        assert first.is_ancestor_of(grand)
        assert not second.is_ancestor_of(grand)
        assert not grand.is_ancestor_of(root)

    def test_child_index_and_siblings(self):
        doc, root, first, second = small_document()
        assert root.child_index(first) == 0
        assert root.child_index(second) == 1
        assert list(first.following_siblings()) == [second]
        assert list(second.preceding_siblings()) == [first]

    def test_child_index_of_non_child_raises(self):
        doc, root, first, second = small_document()
        stranger = doc.new_element("stranger")
        with pytest.raises(TreeStructureError):
            root.child_index(stranger)

    def test_text_value_concatenates(self):
        doc = Document()
        root = doc.new_element("r")
        doc.set_root(root)
        root.append_child(doc.new_text("a"))
        root.append_child(doc.new_element("x"))
        root.append_child(doc.new_text("b"))
        assert root.text_value() == "ab"

    def test_attribute_lookup(self):
        doc = Document()
        root = doc.new_element("r")
        doc.set_root(root)
        root.append_child(doc.new_attribute("id", "1"))
        assert root.attribute("id").value == "1"
        assert root.attribute("missing") is None


class TestTraversal:
    def test_preorder_is_document_order(self):
        doc, root, first, second = small_document()
        names = [n.name or "text" for n in root.preorder()]
        assert names == ["root", "first", "text", "second"]

    def test_postorder(self):
        doc, root, first, second = small_document()
        names = [n.name or "text" for n in root.postorder()]
        assert names == ["text", "first", "second", "root"]

    def test_descendants_excludes_self(self):
        doc, root, first, second = small_document()
        assert root not in list(root.descendants())
        assert first in list(root.descendants())

    def test_subtree_size(self):
        doc, root, *_ = small_document()
        assert root.subtree_size() == 4

    def test_walk_depths(self):
        doc, root, *_ = small_document()
        seen = []
        walk(root, lambda node, depth: seen.append(depth))
        assert seen == [0, 1, 2, 1]


class TestMutation:
    def test_insert_child_positions(self):
        doc, root, first, second = small_document()
        middle = doc.new_element("middle")
        root.insert_child(1, middle)
        assert [c.name for c in root.children] == ["first", "middle", "second"]

    def test_insert_child_bad_index(self):
        doc, root, *_ = small_document()
        with pytest.raises(TreeStructureError):
            root.insert_child(9, doc.new_element("x"))

    def test_remove_child_detaches(self):
        doc, root, first, second = small_document()
        root.remove_child(first)
        assert first.parent is None
        assert [c.name for c in root.children] == ["second"]

    def test_cannot_adopt_attached_node(self):
        doc, root, first, second = small_document()
        with pytest.raises(TreeStructureError):
            second.append_child(first)

    def test_cycle_rejected(self):
        doc, root, first, second = small_document()
        detached_root = root
        with pytest.raises(TreeStructureError):
            first.append_child(detached_root)

    def test_cross_document_rejected(self):
        doc, root, *_ = small_document()
        other = Document()
        with pytest.raises(TreeStructureError):
            root.append_child(other.new_element("alien"))

    def test_text_cannot_have_children(self):
        doc, root, first, second = small_document()
        text = first.children[0]
        with pytest.raises(TreeStructureError):
            text.append_child(doc.new_element("x"))

    def test_attribute_must_precede_content(self):
        doc, root, first, second = small_document()
        with pytest.raises(TreeStructureError):
            root.append_child(doc.new_attribute("late", "v"))
        # Inserting at the front is fine.
        root.insert_child(0, doc.new_attribute("early", "v"))
        assert root.children[0].is_attribute

    def test_element_cannot_go_before_attributes(self):
        doc = Document()
        root = doc.new_element("r")
        doc.set_root(root)
        root.append_child(doc.new_attribute("a", "1"))
        with pytest.raises(TreeStructureError):
            root.insert_child(0, doc.new_element("x"))

    def test_second_root_rejected(self):
        doc, *_ = small_document()
        with pytest.raises(TreeStructureError):
            doc.set_root(doc.new_element("another"))

    def test_non_element_root_rejected(self):
        doc = Document()
        with pytest.raises(TreeStructureError):
            doc.set_root(doc.new_text("nope"))


class TestDocumentOracles:
    def test_labeled_nodes_skips_text(self):
        doc, root, *_ = small_document()
        assert [n.name for n in doc.labeled_nodes()] == [
            "root", "first", "second",
        ]
        assert doc.labeled_size() == 3
        assert doc.size() == 4

    def test_document_order_index(self):
        doc, root, first, second = small_document()
        index = doc.document_order_index()
        assert index[root.node_id] == 0
        assert index[first.node_id] == 1
        assert index[second.node_id] == 2

    def test_node_by_id(self):
        doc, root, first, *_ = small_document()
        assert doc.node_by_id(first.node_id) is first
        with pytest.raises(TreeStructureError):
            doc.node_by_id(10**9)

    def test_validate_passes_on_good_tree(self):
        doc, *_ = small_document()
        doc.validate()

    def test_validate_detects_bad_parent_pointer(self):
        doc, root, first, second = small_document()
        first.parent = second  # corrupt on purpose
        with pytest.raises(TreeStructureError):
            doc.validate()

    def test_clone_preserves_ids_and_structure(self):
        doc, root, first, second = small_document()
        copy = doc.clone()
        assert copy.root is not root
        assert [n.node_id for n in copy.all_nodes()] == [
            n.node_id for n in doc.all_nodes()
        ]
        # New nodes in the clone avoid id collisions.
        fresh = copy.new_element("fresh")
        assert fresh.node_id > max(n.node_id for n in doc.all_nodes())

    def test_prepost_ranks_match_figure_1b(self, sample):
        from repro.data.sample import FIGURE_1B_PRE_POST

        ranks = sample.preorder_postorder_ranks()
        in_order = [
            ranks[node.node_id] for node in sample.labeled_nodes()
        ]
        assert in_order == FIGURE_1B_PRE_POST
