"""Shared fixtures and helpers for the repro test suite."""

from __future__ import annotations

import functools
from pathlib import Path

import pytest

from repro.data.sample import figure3_tree, figure_tree, sample_document
from repro.schemes.registry import (
    FIGURE7_ORDER,
    available_schemes,
    make_scheme,
)
from repro.updates.document import LabeledDocument
from repro.xmlmodel.generator import random_document

#: Schemes whose labels stay put on insertion (Figure 7 Persistent = F).
PERSISTENT_SCHEMES = ["ordpath", "improved-binary", "qed", "cdqs", "vector"]

#: Schemes with full label-only XPath relationships (XPath Eval. = F).
FULL_XPATH_SCHEMES = [
    "dewey", "ordpath", "dln", "lsdx", "improved-binary", "qed", "cdqs",
]

#: LSDX-family schemes that may produce duplicate labels (section 3.1.2).
COLLIDING_SCHEMES = ["lsdx", "comd"]


@pytest.fixture(autouse=True)
def clean_fault_injector():
    """The fault injector is process-wide; never leak an armed fault."""
    from repro.durability.faults import get_injector

    injector = get_injector()
    injector.reset()
    yield injector
    injector.reset()


@pytest.fixture
def sample():
    """The Figure 1(a) sample document, freshly parsed."""
    return sample_document()


@pytest.fixture
def fig_tree():
    """The shared Figures 4-5 abstract tree."""
    return figure_tree()


@pytest.fixture
def fig3_tree():
    """The Figure 3 abstract tree."""
    return figure3_tree()


# -- static-checker fixture projects (tests/staticcheck/fixtures/) --------

_STATICCHECK_FIXTURES = Path(__file__).parent / "staticcheck" / "fixtures"


@pytest.fixture(scope="session")
def ruleproj():
    """The per-rule lint fixture tree, parsed once per session."""
    from repro.staticcheck.project import Project

    return Project.load(_STATICCHECK_FIXTURES / "ruleproj")


@pytest.fixture(scope="session")
def rule_ctx(ruleproj):
    """A shared RuleContext over the lint fixture tree."""
    from repro.staticcheck.rules import RuleContext

    return RuleContext(project=ruleproj)


@pytest.fixture(scope="session")
def schemeproj():
    """The miniature scheme-registry fixture tree for the verifier."""
    from repro.staticcheck.project import Project

    return Project.load(_STATICCHECK_FIXTURES / "schemeproj")


def labeled(document, scheme_name, **kwargs):
    """A LabeledDocument with collision recording for LSDX-family tests."""
    on_collision = (
        "record" if scheme_name in COLLIDING_SCHEMES else "raise"
    )
    return LabeledDocument(
        document, make_scheme(scheme_name, **kwargs), on_collision=on_collision
    )


def all_scheme_names():
    return available_schemes()


def figure7_names():
    return list(FIGURE7_ORDER)


def assert_labels_match_document_order(ldoc):
    """The Definition 1 invariant, as a test assertion."""
    ldoc.verify_order()


def label_sequence(ldoc):
    """Formatted labels in document order (for figure comparisons)."""
    return [
        ldoc.format_label(node) for node in ldoc.document.labeled_nodes()
    ]


def document_pairs(document):
    """All ordered pairs of distinct labelled nodes."""
    nodes = list(document.labeled_nodes())
    for first in nodes:
        for second in nodes:
            if first is not second:
                yield first, second


@functools.lru_cache(maxsize=8)
def cached_random_document_xml(nodes: int, seed: int) -> str:
    from repro.xmlmodel.serializer import serialize

    return serialize(random_document(nodes, seed=seed))


def fresh_random_document(nodes: int = 80, seed: int = 42):
    """A deterministic random document, rebuilt per call."""
    from repro.xmlmodel.parser import parse

    return parse(cached_random_document_xml(nodes, seed))
