"""Journal round-trips: append, sync policies, torn tails, recovery."""

from __future__ import annotations

import json
import os

import pytest

from conftest import labeled
from repro.durability.journal import (
    SYNC_POLICIES,
    Journal,
    read_journal,
    recover,
)
from repro.encoding.codec import codec_for, supported_codec_schemes
from repro.errors import JournalError, RecoveryError
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize

SAMPLE = "<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>"


def label_stream(ldoc) -> bytes:
    stream, _bits = codec_for(ldoc.scheme).encode_labels(
        ldoc.labels_in_document_order()
    )
    return stream


def journalled_workload(tmp_path, scheme_name, sync="commit"):
    """A document plus a journal holding two committed transactions."""
    ldoc = labeled(parse(SAMPLE), scheme_name)
    path = tmp_path / "doc.journal"
    journal = Journal.create(path, ldoc, name="lib", sync=sync)
    with ldoc.transaction(journal=journal) as txn:
        txn.append_child(ldoc.document.root, "annex")
        txn.set_text(ldoc.document.root.element_children()[0], "filled")
    with ldoc.transaction(journal=journal) as txn:
        txn.insert_after(ldoc.document.root.element_children()[0], "wing")
    journal.close()
    return ldoc, path


class TestRoundTrip:
    @pytest.mark.parametrize("scheme_name", supported_codec_schemes())
    def test_recovery_is_bit_identical(self, tmp_path, scheme_name):
        ldoc, path = journalled_workload(tmp_path, scheme_name)
        result = recover(path)
        assert serialize(result.ldoc.document) == serialize(ldoc.document)
        assert label_stream(result.ldoc) == label_stream(ldoc)
        assert result.transactions_applied == 2
        assert result.operations_applied == 3
        assert result.scheme_name == scheme_name

    @pytest.mark.parametrize("sync", SYNC_POLICIES)
    def test_all_sync_policies_recover(self, tmp_path, sync):
        ldoc, path = journalled_workload(tmp_path, "dewey", sync=sync)
        result = recover(path)
        assert label_stream(result.ldoc) == label_stream(ldoc)

    def test_scheme_configuration_round_trips(self, tmp_path):
        ldoc = labeled(parse(SAMPLE), "dewey", component_bits=4)
        path = tmp_path / "doc.journal"
        with Journal.create(path, ldoc, name="lib") as journal:
            with ldoc.transaction(journal=journal) as txn:
                txn.append_child(ldoc.document.root, "annex")
        result = recover(path)
        assert result.ldoc.scheme.configuration == {"component_bits": 4}
        assert label_stream(result.ldoc) == label_stream(ldoc)


class TestDiscard:
    def test_uncommitted_transaction_is_discarded(self, tmp_path):
        ldoc = labeled(parse(SAMPLE), "cdqs")
        path = tmp_path / "doc.journal"
        journal = Journal.create(path, ldoc, name="lib")
        with ldoc.transaction(journal=journal) as txn:
            txn.append_child(ldoc.document.root, "kept")
        committed = serialize(ldoc.document)
        # Simulate a crash: ops journalled, commit marker never written.
        journal.begin()
        from repro.updates.operations import OpKind, Operation

        journal.append(Operation(kind=OpKind.APPEND_CHILD, target=0,
                                 name="lost"))
        journal.close()
        result = recover(path)
        assert serialize(result.ldoc.document) == committed
        assert result.transactions_applied == 1
        assert result.transactions_discarded == 1

    def test_rolled_back_transaction_is_discarded(self, tmp_path):
        ldoc = labeled(parse(SAMPLE), "cdqs")
        path = tmp_path / "doc.journal"
        journal = Journal.create(path, ldoc, name="lib")
        with pytest.raises(RuntimeError):
            with ldoc.transaction(journal=journal) as txn:
                txn.append_child(ldoc.document.root, "lost")
                raise RuntimeError("boom")
        journal.close()
        result = recover(path)
        assert "lost" not in serialize(result.ldoc.document)
        assert result.transactions_applied == 0
        assert result.transactions_discarded == 1

    def test_torn_tail_line_is_dropped(self, tmp_path):
        ldoc, path = journalled_workload(tmp_path, "qed")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"op","txn":9,"kind":"append-ch')
        records, torn = read_journal(path)
        assert torn
        assert all(record["type"] != "op" or record["txn"] != 9
                   for record in records)
        result = recover(path)
        assert result.torn_tail
        assert label_stream(result.ldoc) == label_stream(ldoc)

    def test_corrupt_interior_line_raises(self, tmp_path):
        ldoc, path = journalled_workload(tmp_path, "qed")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"type": "begin", "txn": 9}) + "\n")
        with pytest.raises(JournalError):
            read_journal(path)


class TestJournalFile:
    def test_reattach_after_torn_tail_truncates_and_continues(self, tmp_path):
        """Regression: attaching to a journal with a torn tail used to
        append straight after the torn bytes, fusing two records into one
        corrupt mid-file line and making every committed transaction
        unrecoverable.  The constructor now truncates the torn tail."""
        ldoc, path = journalled_workload(tmp_path, "qed")
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type":"op","txn":9,"kind":"append-ch')
        journal = Journal(path)
        with ldoc.transaction(journal=journal) as txn:
            txn.append_child(ldoc.document.root, "annex2")
        journal.close()
        records, torn = read_journal(path)
        assert not torn
        result = recover(path)
        assert result.transactions_applied == 3
        assert label_stream(result.ldoc) == label_stream(ldoc)

    def test_reopened_journal_continues_transaction_numbering(self, tmp_path):
        ldoc, path = journalled_workload(tmp_path, "cdqs")
        journal = Journal(path)
        assert journal._has_base
        txn = journal.begin()
        assert txn == 3
        journal.rollback()
        journal.close()

    def test_unknown_sync_policy_rejected(self, tmp_path):
        with pytest.raises(JournalError):
            Journal(tmp_path / "x.journal", sync="sometimes")

    def test_append_requires_base(self, tmp_path):
        journal = Journal(tmp_path / "x.journal")
        from repro.updates.operations import OpKind, Operation

        with pytest.raises(JournalError):
            journal.append(Operation(kind=OpKind.APPEND_CHILD, target=0))
        journal.close()

    def test_recover_requires_base(self, tmp_path):
        path = tmp_path / "x.journal"
        path.write_text(json.dumps({"type": "begin", "txn": 1}) + "\n")
        with pytest.raises(RecoveryError):
            recover(path)

    def test_metrics_published(self, tmp_path):
        from repro.observability.metrics import get_registry

        registry = get_registry()
        with registry.scoped() as delta:
            journalled_workload(tmp_path, "cdqs")
        assert delta.get("durability.journal.appends", 0) == 3
        assert delta.get("durability.journal.commits", 0) == 2

    def test_recovery_counters_published(self, tmp_path):
        from repro.observability.metrics import get_registry
        from repro.updates.operations import OpKind, Operation

        ldoc = labeled(parse(SAMPLE), "cdqs")
        path = tmp_path / "doc.journal"
        journal = Journal.create(path, ldoc, name="lib")
        with ldoc.transaction(journal=journal) as txn:
            txn.append_child(ldoc.document.root, "kept")
        # Crash victim: two journalled ops, commit marker never written.
        journal.begin()
        journal.append(Operation(kind=OpKind.APPEND_CHILD, target=0,
                                 name="lost"))
        journal.append(Operation(kind=OpKind.APPEND_CHILD, target=0,
                                 name="also-lost"))
        journal.close()
        with get_registry().scoped() as delta:
            recover(path)
        assert delta.get("durability.recover.records_replayed") == 1
        assert delta.get("durability.recover.records_discarded") == 2
