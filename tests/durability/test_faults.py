"""Crash-point sweep: recovery always lands on a transaction boundary.

Every test arms one deterministic fault point, runs an update workload
until the injected crash fires, and then asserts the strongest claim the
tentpole makes: the document (tree bytes *and* label bits) is identical
either to the pre-transaction state or to a committed state — never
anything in between.
"""

from __future__ import annotations

import pytest

from conftest import all_scheme_names, labeled
from repro.durability.faults import (
    FaultInjector,
    InjectedFault,
    get_injector,
    maybe_fail,
)
from repro.durability.journal import Journal, recover
from repro.encoding.codec import codec_for, supported_codec_schemes
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize

SAMPLE = "<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>"

#: Fault points exercised through a batch workload, with the probe
#: offset to crash at.  ``batch.operation`` probes once per labelled
#: node; ``batch.apply`` and ``batch.relabel`` probe at most once per
#: batch (and ``batch.relabel`` only when a consolidated pass runs).
BATCH_POINTS = [("batch.operation", 2), ("batch.apply", 1),
                ("batch.relabel", 1)]


def fingerprint(ldoc):
    """Tree bytes plus exact label identity (codec bits where possible).

    The prime scheme has no stream codec; its formatted labels serve as
    the identity there.
    """
    tree = serialize(ldoc.document)
    if ldoc.scheme.metadata.name in supported_codec_schemes():
        stream, _bits = codec_for(ldoc.scheme).encode_labels(
            ldoc.labels_in_document_order()
        )
        return tree, stream
    return tree, tuple(
        ldoc.format_label(node) for node in ldoc.document.labeled_nodes()
    )


class TestInjector:
    def test_faults_are_deterministic_and_one_shot(self):
        injector = FaultInjector()
        injector.arm("p", at=3)
        assert not injector.fires("p")
        assert not injector.fires("p")
        assert injector.fires("p")
        assert not injector.fires("p")  # disarmed after firing
        assert injector.triggered["p"] == 1

    def test_hit_raises_injected_fault(self):
        injector = FaultInjector()
        injector.arm("p")
        with pytest.raises(InjectedFault) as excinfo:
            injector.hit("p")
        assert excinfo.value.point == "p"

    def test_injecting_context_disarms_on_exit(self):
        injector = FaultInjector()
        with injector.injecting("p", at=10):
            assert injector.armed_points() == ["p"]
        assert injector.armed_points() == []

    def test_maybe_fail_is_noop_when_disarmed(self):
        maybe_fail("unarmed.point")  # must not raise

    def test_injected_fault_is_not_a_repro_error(self):
        from repro.errors import ReproError

        assert not issubclass(InjectedFault, ReproError)


class TestBatchCrashes:
    @pytest.mark.parametrize("scheme_name", all_scheme_names())
    @pytest.mark.parametrize("point,at", BATCH_POINTS)
    def test_crash_in_batch_rolls_back_exactly(self, scheme_name, point, at):
        ldoc = labeled(parse(SAMPLE), scheme_name)
        before = fingerprint(ldoc)
        get_injector().arm(point, at=at)
        try:
            with ldoc.batch() as batch:
                root = ldoc.document.root
                for index in range(4):
                    batch.append_child(root, f"n{index}")
                batch.insert_after(root.element_children()[0], "mid")
        except InjectedFault:
            assert fingerprint(ldoc) == before
            ldoc.verify_order()
        else:
            # ``batch.relabel`` never probes when every insert took the
            # fast path (persistent schemes): the batch commits cleanly.
            assert point == "batch.relabel"
            assert fingerprint(ldoc) != before
            ldoc.verify_order()
        assert ldoc._active_batch is None

    @pytest.mark.parametrize("scheme_name", all_scheme_names())
    def test_crash_mid_relabel_rolls_back_exactly(self, scheme_name):
        """``document.relabel`` fires between individual reassignments,
        leaving a half-mutated label map rollback must repair."""
        ldoc = labeled(parse(SAMPLE), scheme_name)
        before = fingerprint(ldoc)
        get_injector().arm("document.relabel", at=2)
        try:
            with ldoc.transaction() as txn:
                shelf = ldoc.document.root.element_children()[0]
                for index in range(6):
                    txn.insert_before(shelf.element_children()[0],
                                      f"b{index}")
        except InjectedFault:
            assert fingerprint(ldoc) == before
            ldoc.verify_order()
        else:
            # Persistent schemes never relabel, so the point never fires:
            # the transaction commits cleanly instead.
            assert fingerprint(ldoc) != before
            ldoc.verify_order()


class TestTransactionCrashes:
    @pytest.mark.parametrize("scheme_name", all_scheme_names())
    def test_crash_at_commit_rolls_back(self, scheme_name):
        ldoc = labeled(parse(SAMPLE), scheme_name)
        before = fingerprint(ldoc)
        get_injector().arm("transaction.commit")
        with pytest.raises(InjectedFault):
            with ldoc.transaction() as txn:
                txn.append_child(ldoc.document.root, "annex")
        assert fingerprint(ldoc) == before
        assert ldoc._active_txn is None


class TestJournalCrashes:
    @pytest.mark.parametrize("scheme_name", supported_codec_schemes())
    @pytest.mark.parametrize(
        "point,at", [("journal.append", 2), ("journal.torn", 2),
                     ("transaction.commit", 1)]
    )
    def test_recovery_lands_on_a_commit_boundary(self, tmp_path,
                                                 scheme_name, point, at):
        """Crash during the second transaction: recovery must reproduce
        exactly the state after the first (committed) transaction."""
        ldoc = labeled(parse(SAMPLE), scheme_name)
        path = tmp_path / "doc.journal"
        journal = Journal.create(path, ldoc, name="lib")
        with ldoc.transaction(journal=journal) as txn:
            txn.append_child(ldoc.document.root, "committed")
        committed = fingerprint(ldoc)

        get_injector().arm(point, at=at)
        with pytest.raises(InjectedFault):
            with ldoc.transaction(journal=journal) as txn:
                txn.append_child(ldoc.document.root, "lost1")
                txn.append_child(ldoc.document.root, "lost2")
                txn.append_child(ldoc.document.root, "lost3")
        journal.close()

        # The live document rolled back to the committed state...
        assert fingerprint(ldoc) == committed
        # ...and so does a recovery from the journal alone.
        result = recover(path)
        assert fingerprint(result.ldoc) == committed
        assert result.transactions_applied == 1
        if point == "journal.torn":
            assert result.torn_tail

    def test_crash_offset_sweep_never_exposes_intermediate_state(
            self, tmp_path):
        """Sweep every append offset of a 5-op transaction: recovery is
        always the prior committed state, whole."""
        for offset in range(1, 6):
            ldoc = labeled(parse(SAMPLE), "cdqs")
            path = tmp_path / f"sweep{offset}.journal"
            journal = Journal.create(path, ldoc, name="lib")
            with ldoc.transaction(journal=journal) as txn:
                txn.append_child(ldoc.document.root, "base")
            committed = fingerprint(ldoc)
            get_injector().arm("journal.append", at=offset)
            with pytest.raises(InjectedFault):
                with ldoc.transaction(journal=journal) as txn:
                    for index in range(5):
                        txn.append_child(ldoc.document.root, f"n{index}")
            journal.close()
            result = recover(path)
            assert fingerprint(result.ldoc) == committed, offset
            assert fingerprint(ldoc) == committed, offset
