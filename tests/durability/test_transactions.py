"""Transaction atomicity: commit keeps everything, rollback keeps nothing."""

from __future__ import annotations

import pytest

from conftest import all_scheme_names, labeled
from repro.durability.transactions import Transaction, UndoRecord
from repro.errors import TransactionError
from repro.store.repository import XMLRepository
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize

SAMPLE = "<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>"


def fingerprint(ldoc):
    """Serialised tree + formatted labels in document order."""
    return (
        serialize(ldoc.document),
        [ldoc.format_label(node) for node in ldoc.document.labeled_nodes()],
    )


class TestRollback:
    def test_exception_restores_document_and_labels(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        before = fingerprint(ldoc)
        with pytest.raises(RuntimeError):
            with ldoc.transaction() as txn:
                txn.append_child(ldoc.document.root, "annex")
                txn.delete(ldoc.document.root.element_children()[0])
                raise RuntimeError("mid-transaction failure")
        assert fingerprint(ldoc) == before
        ldoc.verify_order()

    @pytest.mark.parametrize("scheme_name", all_scheme_names())
    def test_rollback_is_exact_for_every_scheme(self, scheme_name):
        ldoc = labeled(parse(SAMPLE), scheme_name)
        before = fingerprint(ldoc)
        before_log = (ldoc.log.insertions, ldoc.log.deletions)
        with pytest.raises(RuntimeError):
            with ldoc.transaction() as txn:
                shelf = ldoc.document.root.element_children()[0]
                txn.insert_after(shelf, "shelf")
                txn.set_text(shelf.element_children()[0], "title")
                raise RuntimeError("boom")
        assert fingerprint(ldoc) == before
        assert (ldoc.log.insertions, ldoc.log.deletions) == before_log
        assert ldoc.log.rollbacks == 1

    def test_direct_document_updates_also_roll_back(self):
        ldoc = labeled(parse(SAMPLE), "qed")
        before = fingerprint(ldoc)
        with pytest.raises(RuntimeError):
            with ldoc.transaction():
                ldoc.updates.append_child(ldoc.document.root, "direct")
                raise RuntimeError("boom")
        assert fingerprint(ldoc) == before

    def test_node_references_must_be_reresolved_after_rollback(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        stale_root = ldoc.document.root
        with pytest.raises(RuntimeError):
            with ldoc.transaction():
                raise RuntimeError("boom")
        # The restored tree is the captured clone: same ids, new objects.
        assert ldoc.document.root is not stale_root
        assert ldoc.document.root.node_id == stale_root.node_id

    def test_subsumed_batch_is_closed_by_rollback(self):
        """Regression: rollback nulled ``_active_batch`` without closing
        the batch object, so a held reference could keep mutating the
        rolled-back document against stale node references."""
        from repro.errors import BatchError

        ldoc = labeled(parse(SAMPLE), "dewey")
        before = fingerprint(ldoc)
        with pytest.raises(RuntimeError):
            with ldoc.transaction():
                batch = ldoc.batch()
                batch.append_child(ldoc.document.root, "x")
                raise RuntimeError("boom")
        with pytest.raises(BatchError):
            batch.append_child(ldoc.document.root, "y")
        batch.rollback()  # a no-op now, not a second restore
        assert fingerprint(ldoc) == before
        ldoc.verify_order()

    def test_explicit_rollback_is_idempotent(self):
        ldoc = labeled(parse(SAMPLE), "cdqs")
        txn = Transaction(ldoc)
        txn.begin()
        txn.append_child(ldoc.document.root, "x")
        txn.rollback()
        txn.rollback()
        assert txn.state == "rolled-back"
        assert ldoc._active_txn is None


class TestCommit:
    def test_clean_exit_commits(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        with ldoc.transaction() as txn:
            txn.append_child(ldoc.document.root, "annex")
        assert txn.state == "committed"
        names = [n.name for n in ldoc.document.root.element_children()]
        assert names[-1] == "annex"
        ldoc.verify_order()

    def test_committed_work_survives_later_rollback_scope(self):
        ldoc = labeled(parse(SAMPLE), "qed")
        with ldoc.transaction() as txn:
            txn.append_child(ldoc.document.root, "kept")
        after_commit = fingerprint(ldoc)
        with pytest.raises(RuntimeError):
            with ldoc.transaction() as txn:
                txn.append_child(ldoc.document.root, "lost")
                raise RuntimeError("boom")
        assert fingerprint(ldoc) == after_commit

    def test_commit_requires_active_state(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        txn = Transaction(ldoc)
        with pytest.raises(TransactionError):
            txn.commit()

    def test_clean_exit_with_pending_batch_rolls_back(self):
        """Regression: commit's pending-batch refusal used to escape the
        clean-exit path with the transaction still 'active', keeping the
        in-scope mutations and blocking every later transaction."""
        ldoc = labeled(parse(SAMPLE), "dewey")
        before = fingerprint(ldoc)
        with pytest.raises(TransactionError):
            with ldoc.transaction():
                batch = ldoc.batch()
                shelf = ldoc.document.root.element_children()[0]
                batch.insert_before(shelf, "annex")  # deferred label
        assert fingerprint(ldoc) == before
        assert ldoc._active_txn is None
        assert ldoc._active_batch is None
        with ldoc.transaction() as txn:  # the document is usable again
            txn.append_child(ldoc.document.root, "ok")
        ldoc.verify_order()


class TestGuards:
    def test_no_nested_transactions(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        with ldoc.transaction():
            with pytest.raises(TransactionError):
                ldoc.transaction().begin()

    def test_no_transaction_over_open_batch(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        batch = ldoc.batch()
        try:
            with pytest.raises(TransactionError):
                ldoc.transaction().begin()
        finally:
            batch.rollback()

    def test_unaddressable_node_raises_transaction_error(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        with pytest.raises(TransactionError):
            with ldoc.transaction() as txn:
                txn.delete(ldoc.document.root)  # root is not deletable


class TestRepositoryTransactions:
    def test_repository_scope_commits(self):
        repo = XMLRepository()
        repo.add("lib", SAMPLE, scheme="cdqs")
        stored = repo.get("lib")
        with repo.transaction("lib") as txn:
            txn.append_child(stored.ldoc.document.root, "annex")
        assert len(stored.find("annex")) == 1

    def test_repository_rollback_refreshes_indexes(self):
        """Regression: a pre-transaction index must not survive rollback.

        The index refresh stamp is built from update-log counters, which
        rollback restores; without the monotonic ``rollbacks`` counter
        the stale index (referencing the replaced node objects) would
        look current.
        """
        repo = XMLRepository()
        repo.add("lib", SAMPLE, scheme="cdqs")
        stored = repo.get("lib")
        assert len(stored.find("book")) == 3  # build the index
        with pytest.raises(RuntimeError):
            with repo.transaction("lib") as txn:
                txn.append_child(stored.ldoc.document.root, "annex")
                raise RuntimeError("boom")
        live_books = stored.find("book")
        assert len(live_books) == 3
        live_ids = {id(node) for node in live_books}
        current_ids = {
            id(node)
            for node in stored.ldoc.document.labeled_nodes()
            if node.name == "book"
        }
        assert live_ids <= current_ids


class TestUndoRecord:
    def test_manual_capture_and_rollback(self):
        ldoc = labeled(parse(SAMPLE), "dewey")
        before = fingerprint(ldoc)
        undo = UndoRecord(ldoc)
        ldoc.updates.append_child(ldoc.document.root, "x")
        ldoc.updates.append_child(ldoc.document.root, "y")
        undo.rollback()
        assert fingerprint(ldoc) == before
        ldoc.verify_order()

    def test_new_node_ids_do_not_collide_after_rollback(self):
        ldoc = labeled(parse(SAMPLE), "qed")
        undo = UndoRecord(ldoc)
        ldoc.updates.append_child(ldoc.document.root, "x")
        undo.rollback()
        result = ldoc.updates.append_child(ldoc.document.root, "z")
        ids = [node.node_id for node in ldoc.document.all_nodes()]
        assert len(ids) == len(set(ids))
        assert result.node.node_id in ids
