"""Label stream codecs: bit-exact storage layouts and round trips."""

import pytest

from conftest import fresh_random_document, labeled
from repro.data.sample import sample_document
from repro.encoding.codec import codec_for, supported_codec_schemes
from repro.errors import InvalidLabelError
from repro.schemes.registry import make_scheme
from repro.updates.workloads import random_insertions, skewed_insertions

CODEC_SCHEMES = supported_codec_schemes()


def stream_of(scheme_name, document=None, updates=0):
    ldoc = labeled(
        document if document is not None else sample_document(), scheme_name
    )
    if updates:
        random_insertions(ldoc, updates, seed=13)
        skewed_insertions(ldoc, updates)
    return ldoc, ldoc.labels_in_document_order()


@pytest.mark.parametrize("scheme_name", CODEC_SCHEMES)
class TestRoundTrips:
    def test_sample_document_round_trips(self, scheme_name):
        ldoc, labels = stream_of(scheme_name)
        codec = codec_for(ldoc.scheme)
        data, _bits = codec.encode_labels(labels)
        assert codec.decode_labels(data) == labels

    def test_random_document_round_trips(self, scheme_name):
        ldoc, labels = stream_of(
            scheme_name, fresh_random_document(70, seed=61)
        )
        codec = codec_for(ldoc.scheme)
        data, _bits = codec.encode_labels(labels)
        assert codec.decode_labels(data) == labels

    def test_updated_document_round_trips(self, scheme_name):
        ldoc, labels = stream_of(scheme_name, updates=15)
        codec = codec_for(ldoc.scheme)
        data, _bits = codec.encode_labels(labels)
        assert codec.decode_labels(data) == labels

    def test_empty_stream(self, scheme_name):
        scheme = make_scheme(scheme_name)
        codec = codec_for(scheme)
        data, bits = codec.encode_labels([])
        assert codec.decode_labels(data) == []
        assert bits == 0


class TestSizeModelAgreement:
    @pytest.mark.parametrize("scheme_name", [
        "prepost", "xrel", "sector", "ordpath", "dewey",
        "improved-binary", "cdbs", "lsdx",
    ])
    def test_stream_bits_equal_size_model(self, scheme_name):
        """The codec spends exactly the bits the scheme's model claims
        (plus declared per-label framing where the model has none)."""
        ldoc, labels = stream_of(scheme_name, updates=8)
        codec = codec_for(ldoc.scheme)
        _data, bits = codec.encode_labels(labels)
        modelled = sum(ldoc.scheme.label_size_bits(v) for v in labels)
        framing = self._framing_bits(scheme_name, labels)
        assert bits == modelled + framing

    @staticmethod
    def _framing_bits(scheme_name, labels):
        if scheme_name in ("prepost", "xrel", "sector"):
            return 0  # pure fixed width: no framing at all
        if scheme_name == "dewey":
            return 0  # the model already charges the depth field
        if scheme_name == "ordpath":
            return 8 * len(labels)  # component-count byte per label
        # String-path codecs: one depth byte per label; the model charges
        # the per-component length fields already.
        return 8 * len(labels)

    def test_qed_labels_self_delimit(self):
        """The 00-separator stream needs no per-label length data."""
        ldoc, labels = stream_of("qed", updates=10)
        codec = codec_for(ldoc.scheme)
        _data, bits = codec.encode_labels(labels)
        modelled = sum(ldoc.scheme.label_size_bits(v) for v in labels)
        # Framing is exactly one extra separator (2 bits) per label.
        assert bits == modelled + 2 * len(labels)

    def test_vector_stream_matches_varint_bytes(self):
        ldoc, labels = stream_of("vector", updates=10)
        codec = codec_for(ldoc.scheme)
        _data, bits = codec.encode_labels(labels)
        modelled = sum(ldoc.scheme.label_size_bits(v) for v in labels)
        assert bits == modelled


class TestDeweySizeModel:
    def test_dewey_model_counts_depth_field(self):
        scheme = make_scheme("dewey")
        label = (1, 2, 3)
        assert scheme.label_size_bits(label) == (
            scheme.storage.length_field_bits
            + 3 * scheme.component_bits
        )


class TestErrors:
    def test_prime_has_no_codec(self):
        with pytest.raises(InvalidLabelError):
            codec_for(make_scheme("prime"))

    def test_corrupt_ordpath_bucket_detected(self):
        ldoc, labels = stream_of("ordpath")
        codec = codec_for(ldoc.scheme)
        data, _ = codec.encode_labels(labels[:1])
        corrupted = bytes([data[0], data[1], data[2], data[3], 0xFF]) + data[5:]
        with pytest.raises(InvalidLabelError):
            codec.decode_labels(corrupted)

    def test_truncated_stream_detected(self):
        ldoc, labels = stream_of("qed")
        codec = codec_for(ldoc.scheme)
        data, _ = codec.encode_labels(labels)
        with pytest.raises(InvalidLabelError):
            codec.decode_labels(data[: len(data) // 4])


class TestPropertyBasedRoundTrips:
    """Hypothesis: random update programs, then bit-exact round trips."""

    from hypothesis import HealthCheck, given, settings
    from hypothesis import strategies as st

    from repro.updates.operations import Operation, OpKind

    programs = st.lists(
        st.builds(
            Operation,
            kind=st.sampled_from([
                OpKind.INSERT_BEFORE, OpKind.INSERT_AFTER,
                OpKind.APPEND_CHILD, OpKind.PREPEND_CHILD, OpKind.DELETE,
            ]),
            target=st.integers(min_value=0, max_value=30),
            name=st.sampled_from(["n1", "n2"]),
        ),
        max_size=8,
    )

    @settings(max_examples=10, deadline=None)
    @given(program=programs,
           scheme_name=st.sampled_from(["qed", "vector", "ordpath", "dln"]))
    def test_streams_round_trip_after_any_program(self, program, scheme_name):
        from repro.updates.operations import apply_program

        ldoc = labeled(sample_document(), scheme_name)
        apply_program(ldoc, program)
        labels = ldoc.labels_in_document_order()
        codec = codec_for(ldoc.scheme)
        data, _bits = codec.encode_labels(labels)
        assert codec.decode_labels(data) == labels


class TestSeparatorMechanism:
    def test_no_code_bits_ever_form_a_separator(self):
        """Scan the raw QED stream: every 2-bit unit inside a code is
        nonzero, so 00 boundaries are unambiguous — the heart of §4."""
        ldoc, labels = stream_of("qed", updates=20)
        codec = codec_for(ldoc.scheme)
        from repro.labels.bitio import BitReader, BitWriter

        writer = BitWriter()
        separators = 0
        digits = 0
        for label in labels:
            codec.write_label(writer, label)
        reader = BitReader(writer.getvalue(), writer.bit_length)
        while not reader.exhausted:
            unit = reader.read_bits(2)
            if unit == 0:
                separators += 1
            else:
                digits += 1
        assert separators >= 2 * len(labels) - 1
        assert digits > 0
