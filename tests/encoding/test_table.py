"""Encoding scheme tests: the Figure 2 table and Definition 2 reconstruction."""

import pytest

from conftest import labeled
from repro.data.sample import FIGURE_2_ROWS, sample_document
from repro.encoding.table import EncodingTable
from repro.updates.document import LabeledDocument
from repro.xmlmodel.serializer import serialize


def prepost_table():
    return EncodingTable.from_labeled_document(
        labeled(sample_document(), "prepost")
    )


class TestFigure2:
    def test_rows_match_figure_2(self):
        table = prepost_table()
        rows = [
            (
                row.label.pre,
                row.label.post,
                row.node_type,
                None if row.parent_label is None else row.parent_label.pre,
                row.name,
                row.value,
            )
            for row in table
        ]
        assert rows == FIGURE_2_ROWS

    def test_render_contains_headers_and_rows(self):
        rendered = prepost_table().render()
        assert "Node Type" in rendered
        assert "Wayfarer" in rendered
        assert "Attribute" in rendered

    def test_length(self):
        assert len(prepost_table()) == 10


class TestQueries:
    def test_children_of(self):
        table = prepost_table()
        root_label = table.rows[0].label
        children = table.children_of(root_label)
        assert [row.name for row in children] == [
            "title", "author", "publisher",
        ]

    def test_row_by_label(self):
        table = prepost_table()
        row = table.row_by_label(table.rows[3].label)
        assert row.name == "author"

    def test_row_by_unknown_label_raises(self):
        table = prepost_table()
        with pytest.raises(Exception):
            table.row_by_label("nonsense")

    def test_sorted_rows_equal_document_order(self):
        table = prepost_table()
        assert table.sorted_rows() == table.rows


@pytest.mark.parametrize("scheme_name", [
    "prepost", "dewey", "qed", "cdqs", "vector", "ordpath",
])
class TestReconstruction:
    def test_reconstruct_round_trips(self, scheme_name):
        """Definition 2: the encoding permits full reconstruction."""
        original = sample_document()
        table = EncodingTable.from_labeled_document(
            labeled(original, scheme_name)
        )
        rebuilt = table.reconstruct()
        assert _structure(rebuilt) == _structure_normalised(original)

    def test_reconstruct_after_updates(self, scheme_name):
        ldoc = labeled(sample_document(), scheme_name)
        root = ldoc.document.root
        ldoc.append_child(root, "extra")
        ldoc.insert_attribute(root.element_children()[0], "lang", "en")
        table = EncodingTable.from_labeled_document(ldoc)
        rebuilt = table.reconstruct()
        names = [n.name for n in rebuilt.labeled_nodes()]
        assert "extra" in names
        assert "lang" in names


def _structure(document):
    return [
        (node.name, node.kind.value, node.depth(),
         (node.value or node.text_value() or "").strip())
        for node in document.labeled_nodes()
    ]


def _structure_normalised(document):
    return [
        (node.name, node.kind.value, node.depth(),
         (node.value if node.is_attribute else node.text_value()).strip()
         if (node.value or node.text_value()) else "")
        for node in document.labeled_nodes()
    ]
