"""Structural joins: correctness against the nested-loop baseline."""

import pytest

from conftest import fresh_random_document, labeled
from repro.data.sample import sample_document
from repro.store.joins import (
    count_join,
    nested_loop_join,
    path_join,
    semi_join,
    stack_tree_join,
)


def entries(ldoc, name):
    return [
        (ldoc.label_of(node), node)
        for node in ldoc.document.labeled_nodes()
        if node.name == name
    ]


def all_entries(ldoc, predicate=lambda node: node.is_element):
    return [
        (ldoc.label_of(node), node)
        for node in ldoc.document.labeled_nodes()
        if predicate(node)
    ]


@pytest.mark.parametrize("scheme_name", ["prepost", "qed", "vector", "dewey"])
class TestStackTreeJoin:
    def test_matches_nested_loop_on_sample(self, scheme_name):
        ldoc = labeled(sample_document(), scheme_name)
        ancestors = entries(ldoc, "publisher") + entries(ldoc, "editor")
        ancestors = sorted(
            ancestors, key=lambda item: item[1].node_id
        )
        descendants = all_entries(ldoc, lambda n: n.is_element and not n.labeled_children())
        merged = stack_tree_join(ldoc.scheme, ancestors, descendants)
        baseline = nested_loop_join(ldoc.scheme, ancestors, descendants)
        assert sorted(
            (a.node_id, d.node_id) for a, d in merged
        ) == sorted((a.node_id, d.node_id) for a, d in baseline)

    def test_matches_nested_loop_on_random_document(self, scheme_name):
        ldoc = labeled(fresh_random_document(90, seed=71), scheme_name)
        ancestors = entries(ldoc, "section") + entries(ldoc, "chapter")
        ancestors.sort(key=lambda item: item[1].node_id)
        descendants = entries(ldoc, "item") + entries(ldoc, "record")
        descendants.sort(key=lambda item: item[1].node_id)
        merged = stack_tree_join(ldoc.scheme, ancestors, descendants)
        baseline = nested_loop_join(ldoc.scheme, ancestors, descendants)
        assert sorted(
            (a.node_id, d.node_id) for a, d in merged
        ) == sorted((a.node_id, d.node_id) for a, d in baseline)

    def test_count_join_matches_output_size(self, scheme_name):
        ldoc = labeled(fresh_random_document(90, seed=72), scheme_name)
        ancestors = all_entries(
            ldoc, lambda n: n.is_element and n.name in ("section", "book")
        )
        descendants = all_entries(ldoc, lambda n: n.is_element and not n.labeled_children())
        assert count_join(ldoc.scheme, ancestors, descendants) == len(
            stack_tree_join(ldoc.scheme, ancestors, descendants)
        )


class TestSemiJoinAndPath:
    def test_semi_join_keeps_contained_descendants(self):
        ldoc = labeled(sample_document(), "qed")
        editors = entries(ldoc, "editor")
        leaves = all_entries(ldoc, lambda n: n.is_element and not n.labeled_children())
        kept = semi_join(ldoc.scheme, editors, leaves)
        assert [node.name for _l, node in kept] == ["name", "address"]

    def test_semi_join_preserves_document_order(self):
        ldoc = labeled(fresh_random_document(80, seed=73), "qed")
        sections = entries(ldoc, "section")
        elements = all_entries(ldoc)
        kept = semi_join(ldoc.scheme, sections, elements)
        ids = [node.node_id for _l, node in kept]
        order = {
            node.node_id: i
            for i, node in enumerate(ldoc.document.labeled_nodes())
        }
        assert ids == sorted(ids, key=lambda i: order[i])

    def test_path_join_matches_xpath(self):
        from repro.axes.xpath import xpath

        ldoc = labeled(sample_document(), "qed")
        levels = [
            entries(ldoc, "book"),
            entries(ldoc, "publisher"),
            entries(ldoc, "name"),
        ]
        joined = path_join(ldoc.scheme, levels)
        expected = xpath(ldoc, "//book//publisher//name")
        assert [node.node_id for _l, node in joined] == [
            node.node_id for node in expected
        ]

    def test_empty_levels(self):
        ldoc = labeled(sample_document(), "qed")
        assert path_join(ldoc.scheme, []) == []
        assert path_join(ldoc.scheme, [[], entries(ldoc, "name")]) == []

    def test_join_works_after_updates(self):
        ldoc = labeled(sample_document(), "qed")
        editor = next(
            n for n in ldoc.document.labeled_nodes() if n.name == "editor"
        )
        ldoc.append_child(editor, "phone")
        ancestors = entries(ldoc, "editor")
        descendants = sorted(
            entries(ldoc, "phone") + entries(ldoc, "name"),
            key=lambda item: item[1].node_id,
        )
        merged = stack_tree_join(ldoc.scheme, ancestors, descendants)
        assert {d.name for _a, d in merged} == {"phone", "name"}
