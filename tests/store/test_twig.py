"""Twig pattern matching versus XPath-with-predicates ground truth."""

import pytest

from conftest import labeled
from repro.axes.xpath import xpath
from repro.errors import UnsupportedRelationshipError, XPathError
from repro.store.twig import TwigMatcher, TwigNode, child, descendant, twig
from repro.xmlmodel.parser import parse

LIBRARY = """
<library>
  <section>
    <book><title>Dune</title><author>Herbert</author></book>
    <book><title>Untitled Notes</title></book>
    <journal><title>TODS</title><editor><name>Ed</name></editor></journal>
  </section>
  <section>
    <book><title>Neuromancer</title><author>Gibson</author>
          <review><author>Someone</author></review></book>
  </section>
</library>
"""


@pytest.fixture
def ldoc():
    return labeled(parse(LIBRARY), "qed")


def names_and_text(nodes):
    return [(n.name, n.text_value().strip()) for n in nodes]


class TestPatterns:
    def test_single_node_pattern(self, ldoc):
        matches = TwigMatcher(ldoc).match(twig("journal"))
        assert [n.name for n in matches] == ["journal"]

    def test_branching_pattern(self, ldoc):
        # book[title][author] — only books with both children qualify.
        pattern = twig("book", child("title"), child("author"))
        matches = TwigMatcher(ldoc).match(pattern)
        expected = xpath(ldoc, "//book[title][author]")
        assert [n.node_id for n in matches] == [n.node_id for n in expected]
        assert len(matches) == 2

    def test_child_vs_descendant_edges(self, ldoc):
        # The review's author is a descendant of its book but not a child.
        strict = twig("book", child("author"))
        loose = twig("book", descendant("author"))
        matcher = TwigMatcher(ldoc)
        assert len(matcher.match(strict)) == 2
        assert len(matcher.match(loose)) == 2  # same books here
        # journal//name only matches via descendant.
        assert matcher.match(twig("journal", child("name"))) == []
        assert len(matcher.match(twig("journal", descendant("name")))) == 1

    def test_nested_pattern(self, ldoc):
        pattern = twig(
            "section",
            descendant("book", child("title"), child("author")),
        )
        matches = TwigMatcher(ldoc).match(pattern)
        assert len(matches) == 2  # both sections have a qualifying book

    def test_output_node_selection(self, ldoc):
        # Return the titles of books that also have an author.
        pattern = twig(
            "book", child("author"), child("title", output=True)
        )
        matches = TwigMatcher(ldoc).match(pattern)
        assert names_and_text(matches) == [
            ("title", "Dune"), ("title", "Neuromancer"),
        ]

    def test_deep_output_node(self, ldoc):
        pattern = twig(
            "section", descendant("editor", child("name", output=True))
        )
        matches = TwigMatcher(ldoc).match(pattern)
        assert names_and_text(matches) == [("name", "Ed")]

    def test_no_match(self, ldoc):
        assert TwigMatcher(ldoc).match(twig("magazine")) == []
        assert TwigMatcher(ldoc).match(
            twig("book", child("isbn"))
        ) == []

    def test_count(self, ldoc):
        assert TwigMatcher(ldoc).count(twig("book", child("title"))) == 3


class TestPatternValidation:
    def test_bad_axis_rejected(self):
        with pytest.raises(XPathError):
            TwigNode(name="x", axis="sideways")

    def test_two_outputs_rejected(self, ldoc):
        pattern = twig(
            "book", child("title", output=True), child("author", output=True)
        )
        with pytest.raises(XPathError):
            TwigMatcher(ldoc).match(pattern)


class TestAcrossSchemes:
    @pytest.mark.parametrize("scheme_name", ["qed", "dewey", "ordpath", "cdqs"])
    def test_full_xpath_schemes_agree(self, scheme_name):
        ldoc = labeled(parse(LIBRARY), scheme_name)
        pattern = twig("book", child("title"), child("author"))
        matches = TwigMatcher(ldoc).match(pattern)
        expected = xpath(ldoc, "//book[title][author]")
        assert [n.node_id for n in matches] == [n.node_id for n in expected]

    def test_vector_needs_fallback_for_child_edges(self):
        ldoc = labeled(parse(LIBRARY), "vector")
        pattern = twig("book", child("title"))
        with pytest.raises(UnsupportedRelationshipError):
            TwigMatcher(ldoc, allow_fallback=False).match(pattern)
        matches = TwigMatcher(ldoc, allow_fallback=True).match(pattern)
        assert len(matches) == 3

    def test_vector_descendant_edges_are_label_only(self):
        ldoc = labeled(parse(LIBRARY), "vector")
        pattern = twig("section", descendant("author"))
        matches = TwigMatcher(ldoc, allow_fallback=False).match(pattern)
        assert len(matches) == 2


class TestAfterUpdates:
    def test_matching_tracks_updates(self, ldoc):
        matcher = TwigMatcher(ldoc)
        pattern = twig("book", child("title"), child("author"))
        assert matcher.count(pattern) == 2
        lonely = xpath(ldoc, "//book[title='Untitled Notes']")[0]
        ldoc.append_child(lonely, "author")
        assert matcher.count(pattern) == 3
