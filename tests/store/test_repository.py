"""The XML repository: management, queries, snapshots, scheme advice."""

import pytest

from repro.data.sample import SAMPLE_XML
from repro.errors import SnapshotMismatchError, StorageError, UpdateError
from repro.store.repository import (
    Snapshot,
    XMLRepository,
    open_repository,
    suggest_scheme,
    warn_on_legacy_repository,
)

LIBRARY = (
    "<library><shelf><book><title>Dune</title></book>"
    "<book><title>Neuromancer</title></book></shelf></library>"
)


@pytest.fixture
def repo():
    repository = XMLRepository()
    repository.add("sample", SAMPLE_XML, scheme="qed")
    repository.add("library", LIBRARY)  # default scheme (cdqs)
    return repository


class TestManagement:
    def test_add_and_get(self, repo):
        assert repo.get("sample").ldoc.scheme.metadata.name == "qed"
        assert repo.get("library").ldoc.scheme.metadata.name == "cdqs"

    def test_names_and_len(self, repo):
        assert repo.names() == ["library", "sample"]
        assert len(repo) == 2
        assert "sample" in repo

    def test_duplicate_name_rejected(self, repo):
        with pytest.raises(UpdateError):
            repo.add("sample", "<x/>")

    def test_unknown_name_rejected(self, repo):
        with pytest.raises(UpdateError):
            repo.get("missing")

    def test_remove(self, repo):
        repo.remove("library")
        assert "library" not in repo

    def test_add_existing_tree(self):
        from repro.data.sample import sample_document

        repository = XMLRepository()
        stored = repository.add("doc", sample_document(), scheme="vector")
        assert stored.ldoc.scheme.metadata.name == "vector"

    def test_scheme_config_passes_through(self):
        repository = XMLRepository()
        stored = repository.add("doc", "<a/>", scheme="xrel", gap=32)
        assert stored.ldoc.scheme.gap == 32


class TestQueries:
    def test_find_by_name(self, repo):
        assert [n.name for n in repo.get("library").find("title")] == [
            "title", "title",
        ]

    def test_find_by_value(self, repo):
        found = repo.get("library").find_value("Dune")
        assert [n.name for n in found] == ["title"]

    def test_descendant_path(self, repo):
        titles = repo.get("library").descendant_path(
            ["library", "book", "title"]
        )
        assert [n.text_value() for n in titles] == ["Dune", "Neuromancer"]

    def test_descendant_path_misses(self, repo):
        assert repo.get("library").descendant_path(["book", "isbn"]) == []

    def test_xpath_passthrough(self, repo):
        result = repo.get("sample").xpath("//editor/name")
        assert [n.name for n in result] == ["name"]

    def test_indexes_refresh_after_update(self, repo):
        stored = repo.get("library")
        shelf = stored.find("shelf")[0]
        stored.ldoc.append_child(shelf, "magazine")
        assert [n.name for n in stored.find("magazine")] == ["magazine"]

    def test_index_refresh_after_content_update(self, repo):
        stored = repo.get("library")
        title = stored.find("title")[0]
        stored.ldoc.set_text(title, "Dune Messiah")
        assert stored.find_value("Dune") == []
        assert [n.text_value() for n in stored.find_value("Dune Messiah")] == [
            "Dune Messiah"
        ]


class TestSnapshots:
    def test_snapshot_restore_round_trip(self, repo):
        snapshot = repo.snapshot("sample")
        assert isinstance(snapshot, Snapshot)
        restored = repo.restore(snapshot, name="sample-v2")
        original = repo.get("sample")
        assert restored.ldoc.labels_in_document_order() == (
            original.ldoc.labels_in_document_order()
        )
        restored.ldoc.verify_order()

    def test_snapshot_survives_later_edits(self, repo):
        stored = repo.get("sample")
        before = stored.ldoc.labels_in_document_order()
        snapshot = repo.snapshot("sample")
        # Mutate the live document after the snapshot.
        stored.ldoc.append_child(stored.ldoc.document.root, "late")
        restored = repo.restore(snapshot, name="frozen")
        assert restored.ldoc.labels_in_document_order() == before

    def test_restore_rejects_name_clash(self, repo):
        snapshot = repo.snapshot("sample")
        with pytest.raises(UpdateError):
            repo.restore(snapshot)

    def test_restore_detects_mismatched_stream(self, repo):
        snapshot = repo.snapshot("sample")
        broken = Snapshot(
            name="broken",
            scheme_name=snapshot.scheme_name,
            xml="<tiny/>",
            label_stream=snapshot.label_stream,
        )
        with pytest.raises(SnapshotMismatchError) as excinfo:
            repo.restore(broken)
        assert excinfo.value.label_count > excinfo.value.node_count == 1

    def test_restore_rejects_undecodable_stream(self, repo):
        snapshot = repo.snapshot("sample")
        broken = Snapshot(
            name="broken",
            scheme_name=snapshot.scheme_name,
            xml=snapshot.xml,
            label_stream=snapshot.label_stream[: len(snapshot.label_stream)
                                               // 2],
        )
        with pytest.raises(StorageError):
            repo.restore(broken)

    @pytest.mark.parametrize("scheme_name", [
        "qed", "cdqs", "vector", "ordpath", "prepost", "dewey",
    ])
    def test_round_trip_per_scheme(self, scheme_name):
        repository = XMLRepository()
        repository.add("doc", SAMPLE_XML, scheme=scheme_name)
        snapshot = repository.snapshot("doc")
        restored = repository.restore(snapshot, name="copy")
        assert restored.ldoc.labels_in_document_order() == (
            repository.get("doc").ldoc.labels_in_document_order()
        )

    def test_snapshot_persists_scheme_configuration(self):
        """Regression: a snapshot of a kwargs-configured scheme used to
        restore under a default-configured scheme of the same name."""
        repository = XMLRepository()
        repository.add("doc", SAMPLE_XML, scheme="dewey", component_bits=4)
        snapshot = repository.snapshot("doc")
        assert snapshot.scheme_config == {"component_bits": 4}
        restored = repository.restore(snapshot, name="copy")
        assert restored.ldoc.scheme.component_bits == 4
        assert restored.ldoc.scheme.configuration == {"component_bits": 4}
        original = repository.get("doc").ldoc
        assert restored.ldoc.total_label_bits() == original.total_label_bits()

    def test_snapshot_config_changes_storage_width(self):
        """The configuration is load-bearing: restoring under default
        kwargs would report different storage."""
        repository = XMLRepository()
        narrow = repository.add("narrow", SAMPLE_XML, scheme="dewey",
                                component_bits=4)
        wide = repository.add("wide", SAMPLE_XML, scheme="dewey")
        assert narrow.storage_bits() != wide.storage_bits()
        restored = repository.restore(repository.snapshot("narrow"),
                                      name="copy")
        assert restored.storage_bits() == narrow.storage_bits()


class TestStorageReport:
    def test_report_rows(self, repo):
        report = repo.storage_report()
        assert len(report) == 2
        for name, scheme, nodes, bits in report:
            assert nodes > 0
            assert bits > 0


class TestOpenRepository:
    def test_memory_url(self):
        repository = open_repository("memory://")
        repository.add("doc", LIBRARY)
        assert repository.backend.url_scheme == "memory"
        assert repository.names() == ["doc"]

    def test_unknown_scheme_rejected(self):
        with pytest.raises(StorageError):
            open_repository("carrier-pigeon://nest")

    def test_bare_path_needs_known_suffix(self):
        with pytest.raises(StorageError):
            open_repository("/tmp/unknowable.xyz")

    def test_context_manager_closes_backend(self):
        with open_repository("memory://") as repository:
            repository.add("doc", LIBRARY)
        with pytest.raises(StorageError):
            repository.backend.names()

    def test_persist_writes_live_edits_through(self):
        repository = open_repository("memory://")
        repository.add("doc", LIBRARY)
        stored = repository.get("doc")
        shelf = stored.find("shelf")[0]
        stored.ldoc.append_child(shelf, "magazine")
        assert b"magazine" not in repository.backend.get("doc").xml.encode()
        repository.persist("doc")
        assert "magazine" in repository.backend.get("doc").xml

    def test_persist_requires_materialised_document(self):
        repository = open_repository("memory://")
        with pytest.raises(UpdateError):
            repository.persist("ghost")

    def test_point_query_falls_back_to_materialisation(self):
        repository = open_repository("memory://")
        repository.add("doc", LIBRARY)
        records = repository.point_query("doc", "title")
        assert [record.value for record in records] == [
            "Dune", "Neuromancer",
        ]
        assert repository.live_names() == ["doc"]


class TestLegacyConstructorShim:
    def test_quiet_by_default(self, recwarn):
        XMLRepository()
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]

    def test_warns_when_enabled(self):
        warn_on_legacy_repository(True)
        try:
            with pytest.warns(DeprecationWarning, match="open_repository"):
                XMLRepository()
        finally:
            warn_on_legacy_repository(False)

    def test_explicit_backend_never_warns(self, recwarn):
        from repro.store.backends import MemoryBackend

        warn_on_legacy_repository(True)
        try:
            XMLRepository(backend=MemoryBackend().open())
        finally:
            warn_on_legacy_repository(False)
        assert not [w for w in recwarn.list
                    if issubclass(w.category, DeprecationWarning)]


class TestSuggestScheme:
    def test_version_control_requirement(self):
        # Section 5.2: version control needs persistent labels.
        suggested = suggest_scheme(["version-control"])
        assert suggested == [
            "ordpath", "improved-binary", "qed", "cdqs", "vector",
        ]

    def test_large_documents_requirement(self):
        # Section 5.2: very large documents want overflow freedom.
        assert suggest_scheme(["large-documents"]) == ["qed", "cdqs", "vector"]

    def test_combined_requirements(self):
        assert suggest_scheme(
            ["version-control", "large-documents", "xpath", "compact"]
        ) == ["cdqs"]  # the survey's "most generic" conclusion again

    def test_unsatisfiable_combination(self):
        assert suggest_scheme(["no-division", "large-documents"]) == ["vector"]

    def test_unknown_requirement_rejected(self):
        with pytest.raises(UpdateError):
            suggest_scheme(["teleportation"])


class TestRegisteredQueries:
    def test_register_validates_and_dedupes(self, repo):
        entry = repo.get("library")
        entry.register_query("//book/title")
        entry.register_query("//book/title")
        entry.register_query("/library/shelf")
        assert entry.registered_queries == ["//book/title", "/library/shelf"]

    def test_register_rejects_bad_path(self, repo):
        from repro.errors import XPathError

        entry = repo.get("library")
        with pytest.raises(XPathError):
            entry.register_query("//book[position() = last()]")
        assert entry.registered_queries == []

    def test_registered_queries_returns_a_copy(self, repo):
        entry = repo.get("library")
        entry.register_query("//book")
        entry.registered_queries.append("//smuggled")
        assert entry.registered_queries == ["//book"]

    def test_check_update_uses_registered_queries(self, repo):
        entry = repo.get("library")
        entry.register_query("//book/title")
        report = entry.check_update("delete //book;")
        assert [v.query for v in report.verdicts] == ["//book/title"]
        assert not report.verdicts[0].independent
        assert report.exit_code == 1

    def test_check_update_clean_program(self, repo):
        entry = repo.get("library")
        entry.register_query("//book/title")
        report = entry.check_update(
            "insert <isbn>0-441-x</isbn> into /library/shelf/book[1];")
        assert report.verdicts[0].independent
        assert report.exit_code == 0

    def test_check_update_knows_the_scheme(self, repo):
        report = repo.get("library").check_update("delete //book;")
        assert report.prediction["scheme"] == "cdqs"
        assert report.prediction["persistent_labels"] is True
