"""Backend conformance: one suite, every storage engine.

Each test in ``TestConformance`` runs against all three built-in
backends through one parametrised fixture, so a new backend earns its
place by passing the identical contract: snapshot round-trips across
every codec-supported scheme (all registry schemes except ``prime``,
which has no stream codec), upsert/delete/name semantics, typed
:class:`~repro.errors.StorageError` failures, and restart persistence
for the disk engines.  Engine-specific guarantees — SQLite's
concurrent-open refusal and materialisation-free point queries, the
page file's crash-safe commit protocol — get their own classes below.
"""

import os

import pytest

from repro.data.sample import SAMPLE_XML
from repro.durability.faults import InjectedFault, get_injector
from repro.encoding.codec import supported_codec_schemes
from repro.errors import BackendLockedError, StorageError
from repro.store import open_repository
from repro.store.backends import (
    MemoryBackend,
    PageFileBackend,
    SQLiteBackend,
    backend_for_url,
    parse_storage_url,
    registered_backends,
)
from repro.store.snapshots import Snapshot, snapshot_document
from repro.updates.document import LabeledDocument
from repro.schemes.registry import make_scheme
from repro.xmlmodel.parser import parse
from repro.xmlmodel.xmark import XMarkGenerator

BACKENDS = ["memory", "sqlite", "pagefile"]

LIBRARY = (
    "<library><shelf><book><title>Dune</title></book>"
    "<book><title>Neuromancer</title></book></shelf></library>"
)


def make_url(backend: str, tmp_path) -> str:
    if backend == "memory":
        return "memory://"
    if backend == "sqlite":
        return f"sqlite:///{tmp_path}/store.db"
    return f"pagefile:///{tmp_path}/store.pages"


def sample_snapshot(scheme_name: str = "qed", xml: str = SAMPLE_XML,
                    name: str = "doc") -> Snapshot:
    ldoc = LabeledDocument(parse(xml), make_scheme(scheme_name))
    return snapshot_document(ldoc, name)


@pytest.fixture(params=BACKENDS)
def backend(request, tmp_path):
    engine = backend_for_url(make_url(request.param, tmp_path)).open()
    yield engine
    engine.close()


class TestConformance:
    def test_put_get_round_trip(self, backend):
        snapshot = sample_snapshot()
        backend.put(snapshot)
        loaded = backend.get("doc")
        assert loaded.xml == snapshot.xml
        assert loaded.label_stream == snapshot.label_stream
        assert loaded.scheme_name == snapshot.scheme_name
        assert loaded.scheme_config == snapshot.scheme_config

    @pytest.mark.parametrize("scheme_name", supported_codec_schemes())
    def test_round_trip_every_codec_scheme(self, backend, scheme_name):
        snapshot = sample_snapshot(scheme_name)
        backend.put(snapshot)
        loaded = backend.get("doc")
        assert loaded.label_stream == snapshot.label_stream
        assert loaded.scheme_name == scheme_name

    def test_scheme_config_round_trips(self, backend):
        ldoc = LabeledDocument(
            parse(SAMPLE_XML), make_scheme("dewey", component_bits=4)
        )
        backend.put(snapshot_document(ldoc, "narrow"))
        assert backend.get("narrow").scheme_config == {"component_bits": 4}

    def test_put_is_upsert(self, backend):
        backend.put(sample_snapshot(xml="<a><b/></a>"))
        backend.put(sample_snapshot(xml="<a><b/><c/></a>"))
        assert backend.names() == ["doc"]
        assert "<c" in backend.get("doc").xml

    def test_names_and_contains(self, backend):
        backend.put(sample_snapshot(name="beta"))
        backend.put(sample_snapshot(name="alpha"))
        assert backend.names() == ["alpha", "beta"]
        assert backend.contains("alpha")
        assert not backend.contains("gamma")

    def test_delete(self, backend):
        backend.put(sample_snapshot())
        backend.delete("doc")
        assert backend.names() == []
        with pytest.raises(StorageError):
            backend.get("doc")

    def test_missing_document_is_typed(self, backend):
        with pytest.raises(StorageError):
            backend.get("ghost")
        with pytest.raises(StorageError):
            backend.delete("ghost")

    def test_use_after_close_is_typed(self, backend):
        backend.close()
        with pytest.raises(StorageError):
            backend.names()

    def test_storage_bytes_grows(self, backend):
        backend.put(sample_snapshot())
        assert backend.storage_bytes() > 0

    def test_repository_round_trip_over_backend(self, backend):
        from repro.store.repository import XMLRepository

        repository = XMLRepository(backend=backend)
        repository.add("lib", LIBRARY, scheme="qed")
        snapshot = repository.snapshot("lib")
        restored = repository.restore(snapshot, name="copy")
        assert restored.ldoc.labels_in_document_order() == (
            repository.get("lib").ldoc.labels_in_document_order()
        )


class TestDiskPersistence:
    @pytest.mark.parametrize("engine", ["sqlite", "pagefile"])
    def test_snapshot_survives_restart(self, engine, tmp_path):
        url = make_url(engine, tmp_path)
        snapshot = sample_snapshot("cdqs")
        with backend_for_url(url) as first:
            first.put(snapshot)
        with backend_for_url(url) as second:
            loaded = second.get("doc")
        assert loaded.label_stream == snapshot.label_stream
        assert loaded.xml == snapshot.xml

    @pytest.mark.parametrize("engine", ["sqlite", "pagefile"])
    def test_delete_survives_restart(self, engine, tmp_path):
        url = make_url(engine, tmp_path)
        with backend_for_url(url) as first:
            first.put(sample_snapshot(name="keep"))
            first.put(sample_snapshot(name="drop"))
            first.delete("drop")
        with backend_for_url(url) as second:
            assert second.names() == ["keep"]


class TestSQLite:
    def test_concurrent_open_refused(self, tmp_path):
        url = make_url("sqlite", tmp_path)
        with backend_for_url(url) as holder:
            holder.put(sample_snapshot())
            with pytest.raises(BackendLockedError):
                backend_for_url(url).open()

    def test_xmark_restart_point_query_without_parse(self, tmp_path):
        """The acceptance path: ingest XMark, restart, point-query.

        After the restart nothing is materialised — the answer comes
        off the node table, labels decoded per row — and it matches a
        full materialisation exactly.
        """
        url = make_url("sqlite", tmp_path)
        corpus = XMarkGenerator(scale=0.5, seed=7).generate()
        with open_repository(url) as repository:
            repository.add("xmark", corpus, scheme="cdqs")
        with open_repository(url) as repository:
            records = repository.point_query("xmark", "item")
            assert repository.live_names() == []
            assert records, "XMark always has items"
            materialised = repository.get("xmark")
            expected = [
                materialised.ldoc.labels[node.node_id]
                for node in materialised.find("item")
            ]
            assert [record.label for record in records] == expected

    def test_point_query_orders_and_types_rows(self, tmp_path):
        with open_repository(make_url("sqlite", tmp_path)) as repository:
            repository.add(
                "doc", "<a><b id='1'>x</b><c/><b>y</b></a>", scheme="qed"
            )            # still live: drop the cache to force the backend path
            repository._live.clear()
            records = repository.point_query("doc", "b")
            assert [r.value for r in records] == ["x", "y"]
            assert [r.kind for r in records] == ["element", "element"]
            assert records[0].ordinal < records[1].ordinal
            assert all(r.parent_ordinal == 0 for r in records)

    def test_point_query_missing_document(self, tmp_path):
        with backend_for_url(make_url("sqlite", tmp_path)) as engine:
            with pytest.raises(StorageError):
                engine.point_query("ghost", "b")


class TestPageFileCrashSafety:
    def test_crash_before_directory_record(self, tmp_path):
        """Payload fsynced but no directory line: the put never happened."""
        url = make_url("pagefile", tmp_path)
        stable = sample_snapshot("qed", name="stable")
        engine = backend_for_url(url).open()
        engine.put(stable)
        get_injector().arm("pagefile.commit")
        with pytest.raises(InjectedFault):
            engine.put(sample_snapshot(name="victim"))
        engine.close()

        with backend_for_url(url) as recovered:
            assert recovered.names() == ["stable"]
            assert recovered.get("stable").label_stream == (
                stable.label_stream
            )

    def test_crash_mid_directory_record(self, tmp_path):
        """Torn directory line: discarded by the journal's tail rule."""
        url = make_url("pagefile", tmp_path)
        stable = sample_snapshot("cdqs", name="stable")
        engine = backend_for_url(url).open()
        engine.put(stable)
        get_injector().arm("pagefile.torn")
        with pytest.raises(InjectedFault):
            engine.put(sample_snapshot(name="victim"))
        engine.close()

        with backend_for_url(url) as recovered:
            assert recovered.names() == ["stable"]
            assert recovered.get("stable").label_stream == (
                stable.label_stream
            )
            # The next put after recovery must not collide with the
            # truncated orphan pages.
            after = sample_snapshot(name="after")
            recovered.put(after)
            assert recovered.get("after").xml == after.xml
            assert recovered.names() == ["after", "stable"]

    def test_orphan_pages_truncated_on_reattach(self, tmp_path):
        url = make_url("pagefile", tmp_path)
        path = parse_storage_url(url)[1]
        engine = backend_for_url(url).open()
        engine.put(sample_snapshot(name="stable"))
        get_injector().arm("pagefile.commit")
        with pytest.raises(InjectedFault):
            engine.put(sample_snapshot(name="victim"))
        engine.close()
        orphaned = os.path.getsize(path)

        backend_for_url(url).open().close()
        assert os.path.getsize(path) < orphaned

    def test_corrupt_payload_detected(self, tmp_path):
        url = make_url("pagefile", tmp_path)
        path = parse_storage_url(url)[1]
        with backend_for_url(url) as engine:
            engine.put(sample_snapshot())
        with open(path, "r+b") as handle:
            handle.seek(10)
            handle.write(b"\xff\xff\xff")
        with backend_for_url(url) as engine:
            with pytest.raises(StorageError, match="CRC"):
                engine.get("doc")


class TestStorageURLs:
    def test_registered_backends(self):
        assert registered_backends() == ["memory", "pagefile", "sqlite"]

    @pytest.mark.parametrize("url, expected", [
        ("memory://", ("memory", "")),
        ("sqlite:///x.db", ("sqlite", "x.db")),
        ("sqlite:///var/x.db", ("sqlite", "var/x.db")),
        ("sqlite:////var/x.db", ("sqlite", "/var/x.db")),
        ("pagefile://rel/x.pages", ("pagefile", "rel/x.pages")),
        ("corpus.sqlite3", ("sqlite", "corpus.sqlite3")),
        ("corpus.pagefile", ("pagefile", "corpus.pagefile")),
    ])
    def test_parse(self, url, expected):
        assert parse_storage_url(url) == expected

    def test_unknown_scheme(self):
        with pytest.raises(StorageError, match="unknown storage scheme"):
            parse_storage_url("carrier-pigeon://nest")

    def test_disk_scheme_needs_path(self):
        with pytest.raises(StorageError, match="needs a file path"):
            parse_storage_url("sqlite://")

    def test_backend_classes_expose_their_scheme(self):
        assert MemoryBackend.url_scheme == "memory"
        assert SQLiteBackend.url_scheme == "sqlite"
        assert PageFileBackend.url_scheme == "pagefile"
