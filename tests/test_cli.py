"""Command-line interface tests (invoked in-process via main())."""

import pytest

from repro.cli import main
from repro.data.sample import SAMPLE_XML


@pytest.fixture
def sample_file(tmp_path):
    path = tmp_path / "sample.xml"
    path.write_text(SAMPLE_XML, encoding="utf-8")
    return str(path)


class TestSchemes:
    def test_lists_all_schemes(self, capsys):
        assert main(["schemes"]) == 0
        out = capsys.readouterr().out
        for name in ("prepost", "qed", "cdqs", "vector", "prime"):
            assert name in out
        assert "extension scheme" in out


class TestLabel:
    def test_labels_a_file(self, sample_file, capsys):
        assert main(["label", sample_file, "--scheme", "qed"]) == 0
        out = capsys.readouterr().out
        assert "<>book" in out
        assert "@genre" in out
        assert "bits/label" in out

    def test_dewey_rendering(self, sample_file, capsys):
        assert main(["label", sample_file, "--scheme", "dewey"]) == 0
        assert "1.1.1" in capsys.readouterr().out

    def test_missing_file_fails(self, capsys):
        assert main(["label", "/nonexistent.xml"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_malformed_xml_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.xml"
        bad.write_text("<a><b></a>", encoding="utf-8")
        assert main(["label", str(bad)]) == 1
        assert "error:" in capsys.readouterr().err


class TestTable:
    def test_prints_figure2_style_table(self, sample_file, capsys):
        assert main(["table", sample_file]) == 0
        out = capsys.readouterr().out
        assert "Node Type" in out
        assert "Wayfarer" in out


class TestQuery:
    def test_query_elements(self, sample_file, capsys):
        assert main(["query", sample_file, "//editor/name"]) == 0
        out = capsys.readouterr().out
        assert "<name>" in out
        assert "1 node(s)" in out

    def test_query_attributes(self, sample_file, capsys):
        assert main(["query", sample_file, "//title/@genre"]) == 0
        assert "@genre='Fantasy'" in capsys.readouterr().out

    def test_bad_path_fails(self, sample_file, capsys):
        assert main(["query", sample_file, "?what"]) == 1


class TestMatrix:
    def test_matrix_reproduces(self, capsys):
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "All 120 cells agree" in out
        assert "most generic scheme (section 5.2): cdqs" in out


class TestFigure:
    @pytest.mark.parametrize("number", ["1", "3", "4", "5", "6"])
    def test_figures_print_and_match(self, number, capsys):
        assert main(["figure", number]) == 0
        assert "matches paper: True" in capsys.readouterr().out

    def test_figure2(self, capsys):
        assert main(["figure", "2"]) == 0
        assert "matches paper: True" in capsys.readouterr().out


class TestReport:
    def test_figure_reports_only(self, capsys):
        assert main(["report", "figure"]) == 0
        out = capsys.readouterr().out
        assert "bench_figure7_matrix" in out
        assert "All 120 cells agree" in out
        assert "bench_claim_overflow" not in out

    def test_unknown_kind_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["report", "everything"])


class TestGrowth:
    def test_growth_series(self, capsys):
        assert main([
            "growth", "--schemes", "qed,vector", "--inserts", "80",
            "--step", "40",
        ]) == 0
        out = capsys.readouterr().out
        assert "inserts" in out
        assert "bits/insert" in out


class TestSuggest:
    def test_lists_requirements_when_empty(self, capsys):
        assert main(["suggest"]) == 0
        assert "version-control" in capsys.readouterr().out

    def test_suggests_cdqs_for_the_works(self, capsys):
        assert main([
            "suggest", "version-control", "large-documents", "compact",
        ]) == 0
        assert "cdqs" in capsys.readouterr().out

    def test_unsatisfiable(self, capsys):
        # No Figure 7 row has F for everything.
        assert main([
            "suggest", "no-division", "no-recursion", "large-documents",
        ]) == 1


class TestJournal:
    @pytest.fixture
    def journal_file(self, tmp_path):
        from repro.durability.journal import Journal
        from repro.schemes.registry import make_scheme
        from repro.updates.document import LabeledDocument
        from repro.xmlmodel.parser import parse

        ldoc = LabeledDocument(parse(SAMPLE_XML), make_scheme("cdqs"))
        path = tmp_path / "doc.journal"
        with Journal.create(path, ldoc, name="sample") as journal:
            with ldoc.transaction(journal=journal) as txn:
                txn.append_child(ldoc.document.root, "annex")
        return str(path)

    def test_inspect_lists_records(self, journal_file, capsys):
        assert main(["journal", "inspect", journal_file]) == 0
        out = capsys.readouterr().out
        assert "base" in out
        assert "commit" in out
        assert "append-child" in out

    def test_replay_recovers_and_verifies(self, journal_file, capsys):
        assert main(["journal", "replay", journal_file, "--verify"]) == 0
        out = capsys.readouterr().out
        assert "1 transaction(s)" in out
        assert "verify: document order decided" in out
        assert "<annex/>" in out

    def test_missing_journal_fails(self, capsys):
        assert main(["journal", "inspect", "/nonexistent.journal"]) == 1


class TestStoreCommand:
    @pytest.fixture
    def library_file(self, tmp_path):
        path = tmp_path / "library.xml"
        path.write_text(
            "<library><shelf><book><title>Dune</title></book>"
            "<book><title>Neuromancer</title></book></shelf></library>"
        )
        return str(path)

    @pytest.fixture
    def store_url(self, tmp_path):
        return f"sqlite:///{tmp_path}/store.db"

    def test_ingest_ls_round_trip(self, store_url, library_file, capsys):
        assert main(["store", "ingest", store_url, "library",
                     library_file, "--scheme", "cdqs"]) == 0
        out = capsys.readouterr().out
        assert "ingested 'library'" in out
        assert main(["store", "ls", store_url]) == 0
        out = capsys.readouterr().out
        assert "library" in out
        assert "scheme=cdqs" in out
        assert "(sqlite)" in out

    def test_point_query_across_processes(self, store_url, library_file,
                                          capsys):
        assert main(["store", "ingest", store_url, "library",
                     library_file]) == 0
        capsys.readouterr()
        # A fresh invocation = a fresh connection: the query is served
        # from the node table, not from anything in this process.
        assert main(["store", "query", store_url, "library", "title"]) == 0
        out = capsys.readouterr().out
        assert "'Dune'" in out
        assert "'Neuromancer'" in out
        assert "2 node(s)" in out

    def test_get_and_rm(self, store_url, library_file, capsys):
        main(["store", "ingest", store_url, "doc", library_file])
        capsys.readouterr()
        assert main(["store", "get", store_url, "doc", "--xml"]) == 0
        assert "<title>Dune</title>" in capsys.readouterr().out
        assert main(["store", "rm", store_url, "doc"]) == 0
        capsys.readouterr()
        assert main(["store", "get", store_url, "doc"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_pagefile_backend_via_cli(self, tmp_path, library_file, capsys):
        url = f"pagefile:///{tmp_path}/store.pages"
        assert main(["store", "ingest", url, "doc", library_file]) == 0
        capsys.readouterr()
        assert main(["store", "ls", url]) == 0
        assert "(pagefile)" in capsys.readouterr().out

    def test_unknown_url_scheme_fails(self, capsys):
        assert main(["store", "ls", "gopher://hole"]) == 1
        assert "unknown storage scheme" in capsys.readouterr().err


class TestMetricsCommand:
    def test_synthetic_workload_prints_metrics(self, capsys):
        assert main(["metrics", "--scheme", "qed", "--ops", "20"]) == 0
        out = capsys.readouterr().out
        assert "updates.insertions" in out

    def test_json_output_is_parseable_and_sorted(self, capsys):
        import json as json_module

        assert main(["metrics", "--scheme", "qed", "--ops", "20",
                     "--json"]) == 0
        values = json_module.loads(capsys.readouterr().out)
        assert values.get("updates.insertions", 0) > 0
        assert list(values) == sorted(values)

    def test_prefix_filter_applies_to_json(self, capsys):
        import json as json_module

        assert main(["metrics", "--scheme", "qed", "--ops", "20",
                     "--json", "--prefix", "updates."]) == 0
        values = json_module.loads(capsys.readouterr().out)
        assert values
        assert all(name.startswith("updates.") for name in values)


class TestTraceCommand:
    def test_span_tree_and_summary(self, capsys):
        assert main(["trace", "--scheme", "dewey", "--ops", "40"]) == 0
        out = capsys.readouterr().out
        assert "document.insert" in out
        assert "scheme=dewey" in out
        assert "cumulative" in out  # tree header
        assert "count" in out  # summary table header

    def test_ordpath_overflow_produces_relabel_spans(self, capsys):
        assert main(["trace", "--scheme", "ordpath", "--ops", "200"]) == 0
        out = capsys.readouterr().out
        assert "document.relabel" in out
        assert "scheme=ordpath" in out
        assert "overflow=True" in out

    def test_export_round_trips(self, tmp_path, capsys):
        from repro.observability.tracing import load_trace

        target = tmp_path / "trace.jsonl"
        assert main(["trace", "--scheme", "qed", "--ops", "30",
                     "--export", str(target)]) == 0
        roots = load_trace(target)
        assert roots
        assert any(r.name == "document.insert" for r in roots)

    def test_batch_mode_emits_batch_spans(self, capsys):
        assert main(["trace", "--scheme", "qed", "--ops", "30",
                     "--batch"]) == 0
        assert "batch.apply" in capsys.readouterr().out

    def test_sampling_keeps_a_subset(self, capsys):
        assert main(["trace", "--scheme", "qed", "--ops", "40",
                     "--sample", "0.25", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "span(s)" in out

    def test_file_workload(self, sample_file, capsys):
        assert main(["trace", sample_file, "--scheme", "dewey",
                     "--ops", "20"]) == 0
        assert "document.insert" in capsys.readouterr().out

    def test_tracer_left_disabled_after_run(self):
        from repro.observability.tracing import get_tracer

        assert main(["trace", "--scheme", "qed", "--ops", "10"]) == 0
        assert get_tracer().enabled is False
        assert get_tracer().exporters == []


class TestBench:
    @pytest.fixture
    def one_section(self, monkeypatch):
        """Shrink the default section list so CLI runs stay fast."""
        import repro.observability.benchtel as benchtel

        monkeypatch.setattr(
            benchtel, "default_sections",
            lambda: [("figure", "bench_figure4_ordpath")],
        )

    def test_run_writes_bench_json(self, one_section, tmp_path, capsys):
        import json

        target = tmp_path / "BENCH_cli.json"
        assert main(["bench", "run", "--quick", "--label", "cli",
                     "--out", str(target)]) == 0
        out = capsys.readouterr().out
        assert "bench_figure4_ordpath" in out
        assert "wrote" in out
        payload = json.loads(target.read_text(encoding="utf-8"))
        assert payload["schema_version"] == 1
        assert payload["label"] == "cli"
        assert payload["sections"][0]["status"] == "ok"

    def test_run_reports_section_failures(self, monkeypatch, tmp_path,
                                          capsys):
        import repro.observability.benchtel as benchtel

        monkeypatch.setattr(
            benchtel, "default_sections",
            lambda: [("figure", "no_such_bench_module")],
        )
        assert main(["bench", "run", "--quick",
                     "--out", str(tmp_path / "BENCH_f.json")]) == 1
        assert "FAILED" in capsys.readouterr().err

    def _payload(self, tmp_path, name, wall):
        import json

        path = tmp_path / name
        path.write_text(json.dumps({
            "schema_version": 1, "label": name,
            "sections": [{"name": "s", "kind": "figure", "status": "ok",
                          "wall_median_s": wall}],
        }), encoding="utf-8")
        return str(path)

    def test_compare_flags_injected_slowdown(self, tmp_path, capsys):
        baseline = self._payload(tmp_path, "base.json", 1.0)
        current = self._payload(tmp_path, "BENCH_now.json", 2.0)
        assert main(["bench", "compare", current,
                     "--baseline", baseline]) == 1
        out = capsys.readouterr().out
        assert "regressed" in out
        assert "HARD REGRESSIONS" in out

    def test_compare_soft_gate_exits_zero(self, tmp_path):
        baseline = self._payload(tmp_path, "base.json", 1.0)
        current = self._payload(tmp_path, "BENCH_now.json", 2.0)
        assert main(["bench", "compare", current,
                     "--baseline", baseline, "--soft"]) == 0

    def test_compare_json_output(self, tmp_path, capsys):
        import json

        baseline = self._payload(tmp_path, "base.json", 1.0)
        current = self._payload(tmp_path, "BENCH_now.json", 1.0)
        assert main(["bench", "compare", current,
                     "--baseline", baseline, "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["counts"]["unchanged"] == 1

    def test_compare_missing_baseline_fails_cleanly(self, tmp_path,
                                                    capsys):
        current = self._payload(tmp_path, "BENCH_now.json", 1.0)
        assert main(["bench", "compare", current, "--baseline",
                     str(tmp_path / "absent.json")]) == 1
        assert "error:" in capsys.readouterr().err

    def test_report_renders_health_document(self, one_section, tmp_path,
                                            capsys):
        target = tmp_path / "BENCH_cli.json"
        assert main(["bench", "run", "--quick", "--label", "cli",
                     "--out", str(target)]) == 0
        capsys.readouterr()
        assert main(["bench", "report", "--bench", str(target)]) == 0
        out = capsys.readouterr().out
        assert "Benchmark health report" in out
        assert "bench_figure4_ordpath" in out
        assert "top hotspots" in out

    def test_report_json_merges_trace(self, one_section, tmp_path,
                                      capsys):
        import json

        target = tmp_path / "BENCH_cli.json"
        trace = tmp_path / "spans.jsonl"
        assert main(["bench", "run", "--quick",
                     "--out", str(target)]) == 0
        assert main(["trace", "--scheme", "qed", "--ops", "20",
                     "--export", str(trace)]) == 0
        capsys.readouterr()
        assert main(["bench", "report", "--bench", str(target),
                     "--trace", str(trace), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["bench"]["schema_version"] == 1
        assert any(row["name"] == "document.insert"
                   for row in document["trace_hotspots"])


class TestReportKindValidation:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            main(["report", "bogus"])


class TestLint:
    def test_clean_repo_exits_zero(self, capsys):
        assert main(["lint", "--fast"]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out
        assert "static verdicts over 17 schemes" in out
        assert "division: cdqs, improved-binary, ordpath, qed" in out
        assert "recursion: cdqs, improved-binary, qed, sector, vector" in out

    def test_json_output_is_machine_readable(self, capsys):
        import json

        assert main(["lint", "--fast", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["errors"] == 0
        assert payload["summary"]["exit_code"] == 0
        assert len(payload["schemes"]) == 17
        assert payload["schemes"]["qed"]["uses_division"] is True
        assert payload["schemes"]["dewey"]["uses_division"] is False

    def test_list_rules_prints_the_catalogue(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("REP001", "REP008", "REP100"):
            assert rule_id in out

    def test_select_and_ignore(self, capsys):
        assert main(["lint", "--select", "REP003,REP008"]) == 0
        assert main(["lint", "--fast", "--ignore", "REP002"]) == 0


@pytest.fixture
def restore_oplog():
    """health/top/serve-metrics flip the global op-log on; put it back."""
    from repro.observability.ops import get_oplog

    oplog = get_oplog()
    saved = (oplog.enabled, oplog.capacity, oplog.slow_threshold_s)
    yield oplog
    (oplog.enabled, oplog.capacity, oplog.slow_threshold_s) = saved
    oplog.clear()


class TestHealthCommand:
    def test_quiet_workload_is_ok_exit_zero(self, restore_oplog, capsys):
        assert main(["health", "--workload", "--ops", "30"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("overall: ok")
        assert "rollback-rate" in out

    def test_injected_faults_exit_nonzero_with_evidence(self, restore_oplog,
                                                        capsys):
        assert main(["health", "--inject", "transaction.commit",
                     "--ops", "30"]) == 1
        out = capsys.readouterr().out
        assert "overall: critical" in out
        assert "rollback" in out
        assert "InjectedFault" in out

    def test_json_payload_reports_fault_scenario(self, restore_oplog,
                                                 capsys):
        import json

        assert main(["health", "--inject", "transaction.commit",
                     "--ops", "30", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["status"] == "critical"
        by_probe = {probe["probe"]: probe for probe in payload["probes"]}
        assert by_probe["rollback-rate"]["status"] == "critical"
        assert "rollbacks" in by_probe["rollback-rate"]["evidence"]

    def test_no_workload_evaluates_current_process(self, restore_oplog,
                                                   capsys):
        exit_code = main(["health"])
        out = capsys.readouterr().out
        assert exit_code in (0, 1)
        assert out.startswith("overall:")


class TestMetricsWatch:
    def test_watch_emits_bounded_jsonl_samples(self, capsys):
        import json

        assert main(["metrics", "--scheme", "qed", "--ops", "10",
                     "--watch", "0.01", "--samples", "2"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2
        for line in lines:
            sample = json.loads(line)
            assert set(sample) == {"ts", "elapsed_s", "metrics"}
            assert sample["metrics"]["updates.insertions"] == 10

    def test_watch_respects_prefix(self, capsys):
        import json

        assert main(["metrics", "--scheme", "qed", "--ops", "5",
                     "--watch", "0.01", "--samples", "1",
                     "--prefix", "updates."]) == 0
        (line,) = capsys.readouterr().out.strip().splitlines()
        sample = json.loads(line)
        assert sample["metrics"]
        assert all(name.startswith("updates.")
                   for name in sample["metrics"])


class TestTopCommand:
    def test_bounded_plain_frames(self, restore_oplog, capsys):
        assert main(["top", "--interval", "0.2", "--iterations", "2",
                     "--plain", "--scale", "0.05", "--ops", "20"]) == 0
        out = capsys.readouterr().out
        assert out.count("repro top —") == 2
        assert "ops/s" in out
        assert "health:" in out
        assert "repository.ingest" in out


class TestExplainCommand:
    def test_plain_explain_renders_plan(self, sample_file, capsys):
        assert main(["explain", sample_file, "//book"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN //book" in out
        assert "accelerator-window" in out
        assert "=> estimated" in out

    def test_analyze_records_actuals(self, sample_file, capsys):
        assert main(["explain", sample_file, "//book", "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "analyze" in out
        assert "actual" in out

    def test_no_accelerator_scans_with_reason(self, sample_file, capsys):
        assert main(["explain", sample_file, "//book",
                     "--no-accelerator"]) == 0
        out = capsys.readouterr().out
        assert "scan" in out
        assert "no accelerator attached" in out
        assert "accelerator-window" not in out

    def test_json_plan_is_valid(self, sample_file, capsys):
        import json

        assert main(["explain", sample_file, "//book", "--analyze",
                     "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["analyze"] is True
        assert payload["result_count"] is not None
        assert payload["steps"]

    def test_bad_path_reports_error(self, sample_file, capsys):
        assert main(["explain", sample_file, "//book["]) == 1
        assert "error:" in capsys.readouterr().err


class TestStatsCommand:
    def test_text_summary(self, sample_file, capsys):
        assert main(["stats", sample_file]) == 0
        out = capsys.readouterr().out
        assert "labelled nodes" in out
        assert "depth histogram" in out

    def test_json_payload(self, sample_file, capsys):
        import json

        assert main(["stats", sample_file, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["node_count"] > 0
        assert "tag_counts" in payload


class TestProfileCommand:
    def test_profiles_a_subcommand(self, sample_file, tmp_path, capsys):
        out_file = tmp_path / "q.collapsed"
        assert main(["profile", "--out", str(out_file),
                     "query", sample_file, "//book"]) == 0
        out = capsys.readouterr().out
        assert "-- profile:" in out
        assert out_file.exists()
        assert out_file.read_text().strip()

    def test_requires_a_command(self, capsys):
        assert main(["profile"]) == 2
        assert "needs a command" in capsys.readouterr().err

    def test_refuses_to_profile_itself(self, capsys):
        assert main(["profile", "profile", "schemes"]) == 2
        assert "refusing" in capsys.readouterr().err

    def test_inner_exit_code_propagates(self, tmp_path, capsys):
        out_file = tmp_path / "fail.collapsed"
        assert main(["profile", "--out", str(out_file),
                     "label", "/nonexistent.xml"]) == 1

    def test_global_profile_flag_wraps_any_command(self, sample_file,
                                                   tmp_path, capsys):
        out_file = tmp_path / "global.collapsed"
        assert main(["--profile", str(out_file),
                     "query", sample_file, "//book"]) == 0
        captured = capsys.readouterr()
        assert "node(s)" in captured.out
        assert "-- profile:" in captured.err
        assert out_file.read_text().strip()


class TestBenchReportProfile:
    BASELINE = str(__import__("pathlib").Path(__file__).resolve().parents[1]
                   / "benchmarks" / "baselines" / "default.json")

    def test_profile_hotspots_folded_in(self, tmp_path, capsys):
        collapsed = tmp_path / "p.collapsed"
        collapsed.write_text("repro.cli:main;repro.axes.xpath:xpath 7\n")
        assert main(["bench", "report", "--bench", self.BASELINE,
                     "--profile", str(collapsed)]) == 0
        out = capsys.readouterr().out
        assert "profile hotspots" in out
        assert "repro.axes.xpath:xpath" in out

    def test_json_gains_profile_hotspots(self, tmp_path, capsys):
        import json

        collapsed = tmp_path / "p.collapsed"
        collapsed.write_text("a;b 3\na 1\n")
        assert main(["bench", "report", "--bench", self.BASELINE,
                     "--profile", str(collapsed), "--json"]) == 0
        document = json.loads(capsys.readouterr().out)
        rows = document["profile_hotspots"]
        assert rows[0]["function"] == "b"
        assert rows[0]["self"] == 3


class TestUpdateCommand:
    CLEAN = "insert <keyword>networks</keyword> into /dblp/article[1];"
    CONFLICT = "delete //author;"

    def test_run_executes_program(self, sample_file, capsys):
        assert main(["update", "run", sample_file,
                     "rename //author as writer"]) == 0
        out = capsys.readouterr().out
        assert "applied 1 operation(s)" in out

    def test_run_writes_updated_document(self, sample_file, tmp_path, capsys):
        out_file = tmp_path / "updated.xml"
        assert main(["update", "run", sample_file,
                     "delete //price", "--out", str(out_file)]) == 0
        assert "price" not in out_file.read_text(encoding="utf-8")

    def test_run_program_operand_may_be_a_file(self, sample_file, tmp_path,
                                               capsys):
        program = tmp_path / "prog.ulang"
        program.write_text("delete //price;  # trim prices\n",
                           encoding="utf-8")
        assert main(["update", "run", sample_file, str(program)]) == 0

    def test_check_clean_program_exits_zero(self, sample_file, capsys):
        assert main(["update", "check", sample_file, self.CLEAN,
                     "--query", "/dblp/proceedings/editor/name"]) == 0
        out = capsys.readouterr().out
        assert "independent" in out

    def test_check_planted_conflict_exits_nonzero(self, sample_file, capsys):
        assert main(["update", "check", sample_file, self.CONFLICT,
                     "--query", "//author"]) == 1
        out = capsys.readouterr().out
        assert "UPD004" in out
        assert "may-conflict" in out

    def test_check_json_payload(self, sample_file, capsys):
        import json

        assert main(["update", "check", sample_file, self.CONFLICT,
                     "--query", "//author", "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 1
        assert payload["verdicts"][0]["verdict"] == "may-conflict"

    def test_check_list_rules(self, capsys):
        assert main(["update", "check", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ("UPD001", "UPD002", "UPD003", "UPD004", "UPD005"):
            assert rule in out

    def test_explain_pairs_prediction_with_actuals(self, sample_file, capsys):
        assert main(["update", "explain", sample_file,
                     "delete //price", "--scheme", "ordpath"]) == 0
        out = capsys.readouterr().out
        assert "EXPLAIN UPDATE BATCH" in out
        assert "predicted relabel extent" in out.lower()

    def test_syntax_error_exits_one(self, sample_file, capsys):
        assert main(["update", "run", sample_file, "obliterate //x"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_missing_operands_exit_two(self, capsys):
        assert main(["update", "check"]) == 2
        assert "needs" in capsys.readouterr().err
