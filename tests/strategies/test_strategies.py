"""Ordered-key strategies and the orthogonality skeletons."""

import pytest

from conftest import fresh_random_document
from repro.errors import FrameworkError
from repro.strategies import (
    StrategyContainmentScheme,
    StrategyPrefixScheme,
    available_strategies,
    strategy_by_name,
)
from repro.updates.document import LabeledDocument
from repro.updates.workloads import random_insertions, skewed_insertions

ALL_STRATEGIES = available_strategies()


class TestRegistry:
    def test_expected_strategies_registered(self):
        assert set(ALL_STRATEGIES) >= {"qed", "cdqs", "cdbs", "vector"}

    def test_unknown_strategy_rejected(self):
        with pytest.raises(FrameworkError):
            strategy_by_name("nope")

    def test_duplicate_registration_rejected(self):
        from repro.strategies.base import OrderedKeyStrategy, register_strategy

        with pytest.raises(FrameworkError):
            @register_strategy
            class Duplicate(strategy_by_name("qed").__class__):  # noqa: F811
                name = "qed"


@pytest.mark.parametrize("name", ALL_STRATEGIES)
class TestStrategyContract:
    def test_initial_keys_sorted_unique(self, name):
        strategy = strategy_by_name(name)
        for count in (0, 1, 2, 7, 30):
            keys = strategy.initial(count)
            assert len(keys) == count
            for left, right in zip(keys, keys[1:]):
                assert strategy.compare(left, right) < 0

    def test_before_after_between(self, name):
        strategy = strategy_by_name(name)
        first, last = strategy.initial(2)
        assert strategy.compare(strategy.before(first), first) < 0
        assert strategy.compare(last, strategy.after(last)) < 0
        middle = strategy.between(first, last)
        assert strategy.compare(first, middle) < 0 < strategy.compare(
            last, middle
        )

    def test_unbounded_between_chain(self, name):
        strategy = strategy_by_name(name)
        low, high = strategy.initial(2)
        for _ in range(40):
            new = strategy.between(low, high)
            assert strategy.compare(low, new) < 0 < strategy.compare(high, new)
            low = new

    def test_key_sizes_positive(self, name):
        strategy = strategy_by_name(name)
        for key in strategy.initial(10):
            assert strategy.key_size_bits(key) > 0
            assert isinstance(strategy.format_key(key), str)

    def test_overflow_declaration(self, name):
        strategy = strategy_by_name(name)
        expected = name != "cdbs"  # CDBS went back to fixed-length fields
        assert strategy.overflow_free is expected


@pytest.mark.parametrize("name", ALL_STRATEGIES)
@pytest.mark.parametrize(
    "skeleton_class", [StrategyPrefixScheme, StrategyContainmentScheme]
)
class TestSkeletons:
    def test_orthogonality_both_families(self, name, skeleton_class):
        """Any strategy works in both families — the section 4 claim."""
        skeleton = skeleton_class(strategy_by_name(name))
        ldoc = LabeledDocument(fresh_random_document(60, seed=31), skeleton)
        ldoc.verify_order()
        skewed_insertions(ldoc, 15)
        random_insertions(ldoc, 10, seed=1)
        ldoc.verify_order()
        assert ldoc.log.relabeled_nodes == 0

    def test_ancestors_match_oracle(self, name, skeleton_class):
        skeleton = skeleton_class(strategy_by_name(name))
        document = fresh_random_document(40, seed=32)
        ldoc = LabeledDocument(document, skeleton)
        nodes = list(document.labeled_nodes())
        for first in nodes[:12]:
            for second in nodes[:12]:
                if first is second:
                    continue
                assert skeleton.is_ancestor(
                    ldoc.label_of(first), ldoc.label_of(second)
                ) == first.is_ancestor_of(second)


class TestSkeletonMetadata:
    def test_names_derived_from_strategy(self):
        prefix = StrategyPrefixScheme(strategy_by_name("qed"))
        containment = StrategyContainmentScheme(strategy_by_name("qed"))
        assert prefix.metadata.name == "qed-prefix"
        assert containment.metadata.name == "qed-containment"
        assert prefix.metadata.orthogonal_strategy == "qed"

    def test_prefix_skeleton_has_levels(self):
        prefix = StrategyPrefixScheme(strategy_by_name("vector"))
        document = fresh_random_document(30, seed=33)
        ldoc = LabeledDocument(document, prefix)
        for node in document.labeled_nodes():
            assert prefix.level(ldoc.label_of(node)) == node.depth()
