"""Relationship probes: which labels decide what (section 2.2 evidence)."""

import pytest

from repro.axes.relationships import (
    Relationship,
    decide,
    level_supported,
    oracle,
    supported_relationships,
)
from repro.data.sample import sample_document
from repro.schemes.registry import make_scheme

#: Expected label-decidable relationships, straight from Figure 7's
#: XPath Evaluations column (F = all three, P rows list what works).
EXPECTED = {
    "prepost": {Relationship.ANCESTOR_DESCENDANT, Relationship.PARENT_CHILD},
    "xrel": {Relationship.ANCESTOR_DESCENDANT, Relationship.PARENT_CHILD},
    "sector": {Relationship.ANCESTOR_DESCENDANT},
    "qrs": {Relationship.ANCESTOR_DESCENDANT},
    "dewey": set(Relationship),
    "ordpath": set(Relationship),
    "dln": set(Relationship),
    "lsdx": set(Relationship),
    "improved-binary": set(Relationship),
    "qed": set(Relationship),
    "cdqs": set(Relationship),
    "vector": {Relationship.ANCESTOR_DESCENDANT},
}

#: Expected Level Encoding support (Figure 7's Level Enc. column).
EXPECTED_LEVEL = {
    "prepost": True, "xrel": True, "sector": False, "qrs": False,
    "dewey": True, "ordpath": True, "dln": True, "lsdx": True,
    "improved-binary": True, "qed": True, "cdqs": True, "vector": False,
}


@pytest.mark.parametrize("name,expected", sorted(EXPECTED.items()))
def test_supported_relationships_match_figure7(name, expected):
    assert supported_relationships(make_scheme(name), sample_document()) == (
        expected
    )


@pytest.mark.parametrize("name,expected", sorted(EXPECTED_LEVEL.items()))
def test_level_support_matches_figure7(name, expected):
    assert level_supported(make_scheme(name), sample_document()) is expected


class TestOracle:
    def test_oracle_matches_tree_pointers(self):
        document = sample_document()
        nodes = {n.name: n for n in document.labeled_nodes()}
        assert oracle(
            Relationship.ANCESTOR_DESCENDANT, nodes["book"], nodes["name"]
        )
        assert oracle(Relationship.PARENT_CHILD, nodes["editor"], nodes["name"])
        assert oracle(Relationship.SIBLING, nodes["name"], nodes["address"])
        assert not oracle(Relationship.SIBLING, nodes["name"], nodes["name"])


class TestDecide:
    def test_decide_routes_to_scheme(self):
        scheme = make_scheme("dewey")
        document = sample_document()
        labels = scheme.label_tree(document)
        nodes = {n.name: n for n in document.labeled_nodes()}
        assert decide(
            scheme,
            Relationship.PARENT_CHILD,
            labels[nodes["editor"].node_id],
            labels[nodes["name"].node_id],
        )
