"""The pre/post plane: window queries versus the tree oracle."""

import pytest

from conftest import fresh_random_document
from repro.axes.plane import PrePostPlane
from repro.data.sample import sample_document
from repro.errors import StaleIndexError


@pytest.fixture
def plane():
    return PrePostPlane(sample_document())


def ids(nodes):
    return [node.node_id for node in nodes]


class TestAxesWindows:
    def test_descendants(self, plane):
        root = plane.document.root
        assert len(plane.descendants(root)) == 9
        editor = next(
            n for n in plane.document.labeled_nodes() if n.name == "editor"
        )
        assert [n.name for n in plane.descendants(editor)] == [
            "name", "address",
        ]

    def test_ancestors(self, plane):
        name = next(
            n for n in plane.document.labeled_nodes() if n.name == "name"
        )
        assert [n.name for n in plane.ancestors(name)] == [
            "book", "publisher", "editor",
        ]

    def test_following_and_preceding(self, plane):
        author = next(
            n for n in plane.document.labeled_nodes() if n.name == "author"
        )
        assert [n.name for n in plane.following(author)] == [
            "publisher", "editor", "name", "address", "edition", "year",
        ]
        assert [n.name for n in plane.preceding(author)] == [
            "title", "genre",
        ]

    def test_windows_match_oracle_on_random_document(self):
        document = fresh_random_document(80, seed=91)
        plane = PrePostPlane(document)
        order = list(document.labeled_nodes())
        for node in order[:25]:
            descendants = {
                d.node_id for d in node.descendants() if d.kind.is_labeled
            }
            ancestors = {a.node_id for a in node.ancestors()}
            assert set(ids(plane.descendants(node))) == descendants
            assert set(ids(plane.ancestors(node))) == ancestors
            position = order.index(node)
            expected_following = [
                other.node_id for other in order[position + 1 :]
                if other.node_id not in descendants
            ]
            assert ids(plane.following(node)) == expected_following
            expected_preceding = [
                other.node_id for other in order[:position]
                if other.node_id not in ancestors
            ]
            assert ids(plane.preceding(node)) == expected_preceding


class TestPlaneMechanics:
    def test_raw_window(self, plane):
        nodes = plane.window(1, 4)
        assert [n.name for n in nodes] == ["title", "genre", "author"]

    def test_size(self, plane):
        assert plane.size() == 10

    def test_stale_node_rejected_until_refresh(self, plane):
        root = plane.document.root
        fresh_node = plane.ldoc.append_child(root, "late")
        with pytest.raises(StaleIndexError):
            plane.descendants(fresh_node)
        # The whole plane is stale now, not just the new node: querying
        # from an old node refuses too instead of serving dead windows.
        with pytest.raises(StaleIndexError):
            plane.descendants(root)
        plane.refresh()
        assert plane.ancestors(fresh_node) == [root]

    def test_refresh_after_updates_keeps_oracle_agreement(self, plane):
        root = plane.document.root
        plane.ldoc.prepend_child(root, "zero")
        plane.refresh()
        assert len(plane.descendants(root)) == 10
