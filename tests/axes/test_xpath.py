"""Mini XPath evaluator tests over the sample document."""

import pytest

from conftest import labeled
from repro.axes.xpath import parse_path, xpath
from repro.data.sample import sample_document
from repro.errors import XPathError


@pytest.fixture
def ldoc():
    return labeled(sample_document(), "qed")


def names(nodes):
    return [node.name for node in nodes]


class TestParsing:
    def test_absolute_path(self):
        absolute, steps = parse_path("/book/title")
        assert absolute
        assert [step.name_test for step in steps] == ["book", "title"]

    def test_double_slash_merges_to_descendant(self):
        _, steps = parse_path("//name")
        assert len(steps) == 1
        assert steps[0].axis == "descendant"
        assert steps[0].name_test == "name"

    def test_double_slash_before_explicit_axis_keeps_expansion(self):
        _, steps = parse_path("//ancestor::x")
        assert steps[0].axis == "descendant-or-self"
        assert steps[1].axis == "ancestor"

    def test_axis_syntax(self):
        _, steps = parse_path("ancestor::*")
        assert steps[0].axis == "ancestor"
        assert steps[0].name_test == "*"

    def test_attribute_abbreviation(self):
        _, steps = parse_path("@genre")
        assert steps[0].axis == "attribute"

    def test_dot_and_dotdot(self):
        _, steps = parse_path("../.")
        assert steps[0].axis == "parent"
        assert steps[1].axis == "self"

    def test_predicates_parsed(self):
        _, steps = parse_path("item[2][@id='x']")
        assert steps[0].predicates == ["2", "@id='x'"]

    @pytest.mark.parametrize("bad", ["", "   ", "child::", "?bad", "a[unclosed"])
    def test_bad_paths_rejected(self, bad):
        with pytest.raises((XPathError, ValueError)):
            parse_path(bad)

    def test_unknown_axis_rejected(self):
        with pytest.raises(XPathError):
            parse_path("sideways::a")


class TestEvaluation:
    def test_absolute_root_match(self, ldoc):
        assert names(xpath(ldoc, "/book")) == ["book"]

    def test_absolute_root_mismatch(self, ldoc):
        assert xpath(ldoc, "/magazine") == []

    def test_child_chain(self, ldoc):
        assert names(xpath(ldoc, "/book/publisher/editor/name")) == ["name"]

    def test_descendant_search(self, ldoc):
        assert names(xpath(ldoc, "//name")) == ["name"]

    def test_absolute_descendant_includes_root(self, ldoc):
        # //book must select the root element itself (the abbreviation
        # expands from the virtual document node, not the root).
        assert names(xpath(ldoc, "//book")) == ["book"]
        assert names(xpath(ldoc, "//book//name")) == ["name"]

    def test_wildcard(self, ldoc):
        assert names(xpath(ldoc, "//editor/*")) == ["name", "address"]

    def test_attribute_selection(self, ldoc):
        result = xpath(ldoc, "//title/@genre")
        assert [node.value for node in result] == ["Fantasy"]

    def test_attribute_wildcard(self, ldoc):
        result = xpath(ldoc, "//edition/@*")
        assert [node.name for node in result] == ["year"]

    def test_positional_predicate(self, ldoc):
        assert names(xpath(ldoc, "/book/*[2]")) == ["author"]

    def test_attribute_equality_predicate(self, ldoc):
        assert names(xpath(ldoc, "//edition[@year='2004']")) == ["edition"]
        assert xpath(ldoc, "//edition[@year='1999']") == []

    def test_child_text_predicate(self, ldoc):
        assert names(xpath(ldoc, "//editor[name='Destiny Image']")) == [
            "editor"
        ]

    def test_existence_predicate(self, ldoc):
        assert names(xpath(ldoc, "//*[@year]")) == ["edition"]

    def test_ancestor_axis(self, ldoc):
        assert names(xpath(ldoc, "//name/ancestor::*")) == [
            "book", "publisher", "editor",
        ]

    def test_parent_axis(self, ldoc):
        assert names(xpath(ldoc, "//name/..")) == ["editor"]

    def test_sibling_axes(self, ldoc):
        assert names(xpath(ldoc, "//address/preceding-sibling::*")) == ["name"]
        assert names(xpath(ldoc, "//name/following-sibling::*")) == ["address"]

    def test_following_axis(self, ldoc):
        assert names(xpath(ldoc, "//author/following::*")) == [
            "publisher", "editor", "name", "address", "edition",
        ]

    def test_results_deduplicated_in_document_order(self, ldoc):
        # Two steps that both reach the same nodes must not duplicate.
        result = xpath(ldoc, "//editor/*/ancestor::*")
        assert names(result) == ["book", "publisher", "editor"]

    def test_relative_path_with_context(self, ldoc):
        editor = xpath(ldoc, "//editor")[0]
        assert names(xpath(ldoc, "name", context=editor)) == ["name"]

    def test_union(self, ldoc):
        result = xpath(ldoc, "//name | //address")
        assert names(result) == ["name", "address"]

    def test_union_deduplicates_in_document_order(self, ldoc):
        result = xpath(ldoc, "//address | //editor/* | //name")
        assert names(result) == ["name", "address"]

    def test_union_with_predicates(self, ldoc):
        result = xpath(ldoc, "//edition[@year='2004'] | //title")
        assert names(result) == ["title", "edition"]

    def test_queries_after_updates(self, ldoc):
        root = ldoc.document.root
        ldoc.append_child(root, "index")
        assert names(xpath(ldoc, "/book/index")) == ["index"]


@pytest.mark.parametrize("scheme_name", ["prepost", "vector", "dewey"])
def test_same_answers_across_schemes(scheme_name):
    """XPath results are scheme-independent (fallback where needed)."""
    ldoc = labeled(sample_document(), scheme_name)
    assert names(xpath(ldoc, "//editor/*")) == ["name", "address"]
    assert names(xpath(ldoc, "//name/ancestor::*")) == [
        "book", "publisher", "editor",
    ]


class TestConfirmedBugs:
    """Regression tests for the four confirmed evaluation bugs."""

    def _parsed(self, text, scheme_name="dewey"):
        from repro.xmlmodel.parser import parse

        return labeled(parse(text), scheme_name)

    def test_unterminated_predicate_raises_xpath_error(self):
        # Used to escape as ValueError('substring not found') from
        # rest.index("]").
        ldoc = self._parsed("<a><b/></a>")
        with pytest.raises(XPathError, match="unterminated predicate"):
            xpath(ldoc, "/a/b[")

    def test_positional_predicate_is_per_context_node(self):
        # /a/b/c[1] selects the first c of *each* b (XPath 1.0), not the
        # first of the merged node-set.
        ldoc = self._parsed("<a><b><c i='1'/><c i='2'/></b><b><c i='3'/></b></a>")
        result = xpath(ldoc, "/a/b/c[1]")
        assert [node.attribute("i").value for node in result] == ["1", "3"]

    def test_reverse_axis_counts_in_proximity_order(self):
        # ancestor::*[1] is the nearest ancestor, not the root.
        ldoc = self._parsed("<a><b><c><d/></c></b></a>")
        leaf = xpath(ldoc, "//d")[0]
        assert names(xpath(ldoc, "ancestor::*[1]", context=leaf)) == ["c"]
        assert names(xpath(ldoc, "ancestor::*[3]", context=leaf)) == ["a"]
        assert names(
            xpath(ldoc, "preceding-sibling::*[1]",
                  context=xpath(ldoc, "//b")[0])
        ) == []

    def test_preceding_positional_counts_backwards(self):
        ldoc = self._parsed("<a><x/><y/><z/></a>")
        z = xpath(ldoc, "//z")[0]
        assert names(xpath(ldoc, "preceding-sibling::*[1]", context=z)) == ["y"]
        assert names(xpath(ldoc, "preceding::*[2]", context=z)) == ["x"]

    def test_bracket_inside_quoted_literal(self):
        # A ']' inside a predicate string literal must not close the
        # predicate during bracket scanning.
        ldoc = self._parsed("<a><b x=']'/><b x='other'/></a>")
        result = xpath(ldoc, "/a/b[@x=']']")
        assert len(result) == 1
        assert result[0].attribute("x").value == "]"

    def test_union_bar_inside_quoted_literal(self):
        ldoc = self._parsed("<a><b x='|'/><b x='other'/></a>")
        result = xpath(ldoc, "/a/b[@x='|']")
        assert len(result) == 1
        assert result[0].attribute("x").value == "|"

    def test_slash_inside_quoted_literal(self):
        ldoc = self._parsed("<a><b x='p/q'/></a>")
        result = xpath(ldoc, "/a/b[@x='p/q']")
        assert len(result) == 1
