"""Axis accelerator: window-index answers versus the scan path.

The contract under test: an attached accelerator answers every
accelerated axis identically to ``AxisEvaluator``'s label-table scan —
across all 17 schemes, before and after every mutation kind — and a
detached one refuses with :class:`StaleIndexError` instead of serving
stale windows.
"""

import pytest

from conftest import all_scheme_names, fresh_random_document, labeled
from repro.axes.accelerator import ACCELERATED_AXES, AxisAccelerator
from repro.axes.evaluator import AxisEvaluator
from repro.errors import StaleIndexError
from repro.store.repository import open_repository
from repro.xmlmodel.parser import parse

AXES = sorted(ACCELERATED_AXES)


def ids(nodes):
    return [node.node_id for node in nodes]


def assert_equivalent(ldoc, accelerator, limit=None):
    scan = AxisEvaluator(ldoc, allow_fallback=True)
    fast = AxisEvaluator(ldoc, allow_fallback=True, accelerator=accelerator)
    contexts = list(ldoc.document.labeled_nodes())
    if limit is not None:
        contexts = contexts[:limit]
    for node in contexts:
        for axis in AXES:
            expected = ids(scan.evaluate(axis, node))
            got = ids(fast.evaluate(axis, node))
            assert got == expected, (axis, node.name, expected, got)


def small_ldoc(scheme_name="dewey"):
    return labeled(
        parse("<a><b i='1'><c/><c/></b><b i='2'><c/></b><d/></a>"),
        scheme_name,
    )


@pytest.mark.parametrize("scheme_name", all_scheme_names())
class TestEquivalenceAcrossSchemes:
    def test_static_document(self, scheme_name):
        ldoc = labeled(fresh_random_document(60, seed=7), scheme_name)
        assert_equivalent(ldoc, AxisAccelerator(ldoc), limit=20)

    def test_after_mixed_updates(self, scheme_name):
        # Insert, delete and move through the live update surface; the
        # attached accelerator must keep agreeing with the scan path.
        ldoc = labeled(fresh_random_document(40, seed=11), scheme_name)
        accelerator = AxisAccelerator(ldoc)
        document = ldoc.document
        root = document.root
        ldoc.updates.append_child(root, "fresh")
        first = next(iter(root.labeled_children()))
        ldoc.updates.insert_after(first, "neighbour")
        victim = list(document.labeled_nodes())[-1]
        if victim.parent is not None:
            ldoc.updates.delete(victim)
        movable = next(
            node for node in document.labeled_nodes()
            if node.parent is not None and node.is_element
        )
        ldoc.updates.move(movable, root, len(root.attributes()))
        assert_equivalent(ldoc, accelerator, limit=20)

    def test_after_batch_apply(self, scheme_name):
        ldoc = labeled(fresh_random_document(30, seed=3), scheme_name)
        accelerator = AxisAccelerator(ldoc)
        root = ldoc.document.root
        first = next(iter(root.labeled_children()))
        with ldoc.batch() as batch:
            for index in range(4):
                batch.append_child(root, f"tail{index}")
            batch.insert_before(first, "head")
        assert_equivalent(ldoc, accelerator, limit=20)


class TestIncrementalMaintenance:
    def test_insert_splices_without_rebuild(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        builds = accelerator._metric_builds.value
        ldoc.updates.append_child(ldoc.document.root, "new")
        assert not accelerator.stale
        assert_equivalent(ldoc, accelerator)
        assert accelerator._metric_builds.value == builds

    def test_delete_splices_without_rebuild(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        builds = accelerator._metric_builds.value
        doomed = next(
            node for node in ldoc.document.labeled_nodes() if node.name == "b"
        )
        ldoc.updates.delete(doomed)
        assert not accelerator.stale
        assert_equivalent(ldoc, accelerator)
        assert accelerator._metric_builds.value == builds

    def test_move_stays_current(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        node = next(
            node for node in ldoc.document.labeled_nodes() if node.name == "d"
        )
        target = next(
            node for node in ldoc.document.labeled_nodes() if node.name == "b"
        )
        ldoc.updates.move(node, target, len(target.children))
        assert_equivalent(ldoc, accelerator)

    def test_batch_apply_rebuilds_lazily(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        root = ldoc.document.root
        first = next(iter(root.labeled_children()))
        with ldoc.batch() as batch:
            batch.insert_before(first, "head")  # forces a deferral on dewey
        assert_equivalent(ldoc, accelerator)

    def test_mid_batch_query_refused(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        root = ldoc.document.root
        first = next(iter(root.labeled_children()))
        batch = ldoc.batch()
        batch.insert_before(first, "head")
        assert batch.pending > 0
        with pytest.raises(StaleIndexError, match="batch"):
            accelerator.evaluate("descendant", root)
        batch.apply()
        assert_equivalent(ldoc, accelerator)

    def test_rollback_publishes_rebuild(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        root = ldoc.document.root
        with pytest.raises(RuntimeError):
            with ldoc.transaction():
                ldoc.updates.append_child(root, "doomed")
                raise RuntimeError("abort")
        assert_equivalent(ldoc, accelerator)

    def test_detach_stops_maintenance(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        accelerator.detach()
        ldoc.updates.append_child(ldoc.document.root, "late")
        with pytest.raises(StaleIndexError):
            accelerator.evaluate("descendant", ldoc.document.root)

    def test_unindexed_node_refused(self):
        ldoc = small_ldoc()
        other = small_ldoc()
        accelerator = AxisAccelerator(ldoc)
        with pytest.raises(StaleIndexError):
            accelerator.evaluate("descendant", other.document.root)


class TestStalenessPerMutationKind:
    """A detached index notices every structural mutation kind."""

    def detached(self):
        ldoc = small_ldoc()
        return ldoc, AxisAccelerator(ldoc, attach=False)

    def assert_stale(self, ldoc, accelerator):
        with pytest.raises(StaleIndexError):
            accelerator.evaluate("descendant", ldoc.document.root)
        accelerator.refresh()
        assert_equivalent(ldoc, accelerator)

    def test_insert(self):
        ldoc, accelerator = self.detached()
        ldoc.updates.append_child(ldoc.document.root, "new")
        self.assert_stale(ldoc, accelerator)

    def test_delete(self):
        ldoc, accelerator = self.detached()
        doomed = next(
            node for node in ldoc.document.labeled_nodes() if node.name == "d"
        )
        ldoc.updates.delete(doomed)
        self.assert_stale(ldoc, accelerator)

    def test_move(self):
        ldoc, accelerator = self.detached()
        node = next(
            node for node in ldoc.document.labeled_nodes() if node.name == "d"
        )
        ldoc.updates.move(node, ldoc.document.root, 0)
        self.assert_stale(ldoc, accelerator)

    def test_batch(self):
        ldoc, accelerator = self.detached()
        with ldoc.batch() as batch:
            batch.append_child(ldoc.document.root, "new")
        self.assert_stale(ldoc, accelerator)

    def test_rollback(self):
        ldoc, accelerator = self.detached()
        with pytest.raises(RuntimeError):
            with ldoc.transaction():
                ldoc.updates.append_child(ldoc.document.root, "doomed")
                raise RuntimeError("abort")
        self.assert_stale(ldoc, accelerator)

    def test_content_updates_do_not_stale(self):
        ldoc, accelerator = self.detached()
        element = next(
            node for node in ldoc.document.labeled_nodes() if node.name == "d"
        )
        ldoc.updates.set_text(element, "payload")
        ldoc.updates.rename(element, "renamed")
        assert not accelerator.stale
        assert_equivalent(ldoc, accelerator)

    def test_auto_refresh_rebuilds_silently(self):
        ldoc = small_ldoc()
        accelerator = AxisAccelerator(ldoc, attach=False, auto_refresh=True)
        ldoc.updates.append_child(ldoc.document.root, "new")
        assert_equivalent(ldoc, accelerator)


class TestEvaluatorRouting:
    def test_accelerated_axes_counted(self):
        ldoc = small_ldoc()
        fast = AxisEvaluator(ldoc, accelerator=AxisAccelerator(ldoc))
        fast.evaluate("descendant", ldoc.document.root)
        fast.evaluate("self", ldoc.document.root)
        assert fast.accelerated_hits == 1

    def test_repository_xpath_uses_accelerator(self):
        repository = open_repository("memory://")
        stored = repository.add(
            "doc", "<a><b><c/><c/></b><b><c/></b></a>", scheme="dewey"
        )
        assert len(stored.xpath("//c")) == 3
        assert stored.indexes._accelerator is not None
        # Updates flow through the attached accelerator transparently.
        stored.ldoc.updates.append_child(stored.ldoc.document.root, "b")
        assert len(stored.xpath("/a/b")) == 3
