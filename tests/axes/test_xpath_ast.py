"""Tests for the standalone mini-XPath parser shared by all consumers."""

from __future__ import annotations

import pytest

from repro.axes.xpath_ast import (
    ComparisonPredicate,
    ExistencePredicate,
    LocationPath,
    PositionPredicate,
    Step,
    apply_node_tests,
    parse_path,
    parse_predicate,
    parse_xpath,
    split_union,
)
from repro.errors import XPathError
from repro.xmlmodel.parser import parse


class TestParsePath:
    def test_absolute_child_chain(self):
        absolute, steps = parse_path("/library/section/book")
        assert absolute
        assert [(s.axis, s.name_test) for s in steps] == [
            ("child", "library"), ("child", "section"), ("child", "book"),
        ]

    def test_relative_path(self):
        absolute, steps = parse_path("section/book")
        assert not absolute
        assert len(steps) == 2

    def test_double_slash_merges_to_descendant(self):
        _, steps = parse_path("//book")
        assert [(s.axis, s.name_test) for s in steps] == [
            ("descendant", "book"),
        ]
        _, steps = parse_path("/a//b/c")
        assert [(s.axis, s.name_test) for s in steps] == [
            ("child", "a"), ("descendant", "b"), ("child", "c"),
        ]

    def test_double_slash_keeps_expansion_before_non_child_axis(self):
        _, steps = parse_path("//ancestor::x")
        assert [s.axis for s in steps] == ["descendant-or-self", "ancestor"]

    def test_abbreviations(self):
        _, steps = parse_path("./../@id")
        assert [(s.axis, s.name_test) for s in steps] == [
            ("self", "*"), ("parent", "*"), ("attribute", "id"),
        ]

    def test_explicit_axes(self):
        _, steps = parse_path("following-sibling::item/ancestor::*")
        assert [(s.axis, s.name_test) for s in steps] == [
            ("following-sibling", "item"), ("ancestor", "*"),
        ]

    @pytest.mark.parametrize("bad", [
        "", "   ", "/a/valid::x", "/a/@child::b", "/a/b[", "/a/b]extra",
        "/a/b[position() = last()]",
    ])
    def test_rejects_malformed_paths(self, bad):
        with pytest.raises(XPathError):
            parse_path(bad)


class TestPredicates:
    def test_positional(self):
        predicate = parse_predicate("3")
        assert isinstance(predicate, PositionPredicate)
        assert predicate.position == 3

    def test_attribute_comparison(self):
        predicate = parse_predicate("@year='2004'")
        assert isinstance(predicate, ComparisonPredicate)
        assert predicate.attribute
        assert (predicate.name, predicate.value) == ("year", "2004")

    def test_child_text_comparison_with_double_quotes(self):
        predicate = parse_predicate('name="Destiny Image"')
        assert isinstance(predicate, ComparisonPredicate)
        assert not predicate.attribute
        assert predicate.value == "Destiny Image"

    def test_existence(self):
        assert isinstance(parse_predicate("@year"), ExistencePredicate)
        child = parse_predicate("price")
        assert isinstance(child, ExistencePredicate)
        assert not child.attribute

    def test_predicates_compare_equal_to_raw_text(self):
        # Plans/payloads historically carried predicates as strings.
        _, steps = parse_path("/book[@year='2004'][2]")
        assert steps[0].predicates == ["@year='2004'", "2"]
        assert steps[0].has_positional

    def test_str_round_trips(self):
        _, steps = parse_path("/a//b[@x='1']/ancestor::c")
        assert [str(s) for s in steps] == [
            "a", "descendant::b[@x='1']", "ancestor::c",
        ]


class TestUnions:
    def test_split_union_top_level_only(self):
        assert split_union("//a | /b/c") == ["//a", "/b/c"]
        # '|' inside a predicate string must not split.
        assert split_union("//a[@x='p|q'] | //b") == ["//a[@x='p|q']", "//b"]

    def test_parse_xpath_returns_branches(self):
        branches = parse_xpath("//a | /b")
        assert [b.absolute for b in branches] == [True, True]
        assert all(isinstance(b, LocationPath) for b in branches)
        assert [str(b) for b in branches] == ["//a", "/b"]


class TestApplyNodeTests:
    @pytest.fixture
    def doc(self):
        return parse(
            "<r><b year='1'><n>X</n></b><b year='2'/><c/><b year='3'/></r>"
        )

    def test_name_test_filters_elements(self, doc):
        step = Step(axis="child", name_test="b")
        out = apply_node_tests(step, list(doc.root.children))
        assert [n.name for n in out] == ["b", "b", "b"]

    def test_positional_counts_in_proximity_order_on_reverse_axis(self, doc):
        children = list(doc.root.children)
        last_b = [n for n in children if n.name == "b"][-1]
        candidates = [
            n for n in children[:children.index(last_b)] if n.is_element
        ]
        step = Step(axis="preceding-sibling", name_test="b",
                    predicates=[parse_predicate("1")])
        out = apply_node_tests(step, candidates)
        assert [n.attribute("year").value for n in out] == ["2"]

    def test_comparison_and_existence(self, doc):
        children = list(doc.root.children)
        eq = Step(axis="child", name_test="b",
                  predicates=[parse_predicate("@year='2'")])
        assert len(apply_node_tests(eq, children)) == 1
        has_child = Step(axis="child", name_test="*",
                         predicates=[parse_predicate("n")])
        assert len(apply_node_tests(has_child, children)) == 1
