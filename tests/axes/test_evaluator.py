"""Axis evaluation versus the tree-walk oracle."""

import pytest

from conftest import fresh_random_document, labeled
from repro.axes.evaluator import AXES, AxisEvaluator
from repro.data.sample import sample_document
from repro.errors import UnsupportedRelationshipError


def tree_axis_oracle(ldoc, axis, node):
    """Ground-truth axis evaluation by tree walking."""
    order = list(ldoc.document.labeled_nodes())
    position = {n.node_id: i for i, n in enumerate(order)}
    descendants = {d.node_id for d in node.descendants() if d.kind.is_labeled}
    ancestors = {a.node_id for a in node.ancestors()}

    def in_doc_order(nodes):
        return sorted(nodes, key=lambda n: position[n.node_id])

    if axis == "self":
        return [node]
    if axis == "child":
        return node.labeled_children()
    if axis == "parent":
        return [node.parent] if node.parent is not None else []
    if axis == "ancestor":
        return in_doc_order([n for n in order if n.node_id in ancestors])
    if axis == "ancestor-or-self":
        return in_doc_order(
            [n for n in order if n.node_id in ancestors or n is node]
        )
    if axis == "descendant":
        return in_doc_order([n for n in order if n.node_id in descendants])
    if axis == "descendant-or-self":
        return in_doc_order(
            [n for n in order if n.node_id in descendants or n is node]
        )
    if axis == "following":
        return [
            n for n in order[position[node.node_id] + 1 :]
            if n.node_id not in descendants
        ]
    if axis == "preceding":
        return [
            n for n in order[: position[node.node_id]]
            if n.node_id not in ancestors
        ]
    if axis == "following-sibling":
        return [s for s in node.following_siblings() if s.kind.is_labeled]
    if axis == "preceding-sibling":
        return in_doc_order(
            [s for s in node.preceding_siblings() if s.kind.is_labeled]
        )
    if axis == "attribute":
        return node.attributes()
    raise AssertionError(axis)


@pytest.mark.parametrize("scheme_name", ["dewey", "qed", "ordpath", "cdqs"])
@pytest.mark.parametrize("axis", AXES)
def test_label_only_axes_match_oracle(scheme_name, axis):
    """Full-XPath schemes answer every axis from labels alone."""
    ldoc = labeled(sample_document(), scheme_name)
    evaluator = AxisEvaluator(ldoc, allow_fallback=False)
    for node in ldoc.document.labeled_nodes():
        result = evaluator.evaluate(axis, node)
        expected = tree_axis_oracle(ldoc, axis, node)
        assert [n.node_id for n in result] == [n.node_id for n in expected]
    assert evaluator.fallbacks == 0


@pytest.mark.parametrize("axis", AXES)
def test_axes_on_random_document(axis):
    ldoc = labeled(fresh_random_document(50, seed=44), "qed")
    evaluator = AxisEvaluator(ldoc, allow_fallback=False)
    for node in list(ldoc.document.labeled_nodes())[:15]:
        result = evaluator.evaluate(axis, node)
        expected = tree_axis_oracle(ldoc, axis, node)
        assert [n.node_id for n in result] == [n.node_id for n in expected]


class TestPartialSchemes:
    def test_vector_sibling_axis_requires_fallback(self):
        ldoc = labeled(sample_document(), "vector")
        strict = AxisEvaluator(ldoc, allow_fallback=False)
        node = ldoc.document.root.element_children()[0]
        with pytest.raises(UnsupportedRelationshipError):
            strict.evaluate("following-sibling", node)

    def test_vector_fallback_gives_correct_answers(self):
        ldoc = labeled(sample_document(), "vector")
        evaluator = AxisEvaluator(ldoc, allow_fallback=True)
        for axis in AXES:
            for node in ldoc.document.labeled_nodes():
                result = evaluator.evaluate(axis, node)
                expected = tree_axis_oracle(ldoc, axis, node)
                assert [n.node_id for n in result] == [
                    n.node_id for n in expected
                ]
        assert evaluator.fallbacks > 0

    def test_vector_descendant_axis_is_label_only(self):
        # Ancestor-descendant is the one relationship vector labels decide.
        ldoc = labeled(sample_document(), "vector")
        evaluator = AxisEvaluator(ldoc, allow_fallback=False)
        result = evaluator.evaluate("descendant", ldoc.document.root)
        assert len(result) == 9

    def test_unknown_axis_rejected(self):
        ldoc = labeled(sample_document(), "qed")
        with pytest.raises(UnsupportedRelationshipError):
            AxisEvaluator(ldoc).evaluate("sideways", ldoc.document.root)
