"""Unit tests for fact extraction, call resolution and cycle detection."""

from __future__ import annotations

import ast

from repro.staticcheck.callgraph import (
    CallGraph,
    extract_facts,
    iter_division_ops,
)


def _graph(project):
    return CallGraph(project, scope_prefixes=("repro.",))


def _cls(project, module, name):
    return project.module(module).classes[name]


def _entry(graph, cls, method):
    function = graph.resolve_method(cls, method)
    assert function is not None
    return [(function, cls)]


class TestDivisionClassification:
    def test_all_operator_families(self):
        ops = iter_division_ops(ast.parse(
            "a = x / y\nb = x // y\nc = x % y\nd = divmod(x, y)\nx //= 2\n"
        ))
        assert sorted(op.op for op in ops) == ["%", "/", "//", "//", "divmod"]
        assert all(op.excluded is None for op in ops)

    def test_parity_exclusion(self):
        (op,) = iter_division_ops(ast.parse("if x % 2:\n    pass\n"))
        assert op.excluded == "parity"

    def test_string_format_exclusion(self):
        (op,) = iter_division_ops(ast.parse("text = 'n %s' % name\n"))
        assert op.excluded == "string-format"

    def test_nested_defs_are_seen(self):
        ops = iter_division_ops(ast.parse(
            "def outer():\n    def inner(a, b):\n        return a // b\n"
        ))
        assert [op.op for op in ops] == ["//"]


class TestFactExtraction:
    def test_instrumented_division_detected(self, schemeproj):
        module = schemeproj.module("repro.schemes.looping")
        facts = extract_facts(
            module.functions["RecursiveScheme.insert_sibling"]
        )
        assert [call.method for call in facts.instrumented] == ["divide"]
        assert facts.divisions == []

    def test_raw_division_detected(self, schemeproj):
        module = schemeproj.module("repro.schemes.mutual")
        facts = extract_facts(module.functions["MutualScheme.insert_sibling"])
        assert [op.op for op in facts.divisions] == ["//"]
        assert facts.instrumented == []

    def test_counter_write_detected(self, schemeproj):
        module = schemeproj.module("repro.schemes.tamper")
        facts = extract_facts(module.functions["TamperScheme.label_tree"])
        assert [w.attribute for w in facts.counter_writes] == ["divisions"]

    def test_recursive_call_marker_detected(self, schemeproj):
        module = schemeproj.module("repro.schemes.phantom")
        facts = extract_facts(module.functions["PhantomScheme.label_tree"])
        assert [c.method for c in facts.instrumented] == ["recursive_call"]


class TestResolution:
    def test_mro_is_class_then_bases(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.looping", "RecursiveScheme")
        assert [c.name for c in graph.mro(cls)] == [
            "RecursiveScheme", "LabelingScheme",
        ]

    def test_resolve_method_prefers_override(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.looping", "RecursiveScheme")
        method = graph.resolve_method(cls, "label_tree")
        assert method.module.name == "repro.schemes.looping"
        assert graph.resolve_method(cls, "no_such_method") is None

    def test_self_call_resolves_through_receiver(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.looping", "RecursiveScheme")
        reach = graph.reachable(_entry(graph, cls, "label_tree"))
        names = {qualname for _module, qualname in reach.functions}
        assert "RecursiveScheme._walk" in names

    def test_module_function_call_resolves(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.mutual", "MutualScheme")
        reach = graph.reachable(_entry(graph, cls, "label_tree"))
        names = {qualname for _module, qualname in reach.functions}
        assert {"descend", "revisit"} <= names

    def test_unresolved_calls_are_recorded_not_guessed(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.looping", "RecursiveScheme")
        reach = graph.reachable(_entry(graph, cls, "insert_sibling"))
        targets = {call.target for call in reach.unresolved}
        assert "self.instruments.divide" in targets


class TestCycles:
    def test_direct_recursion_is_a_self_loop_cycle(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.looping", "RecursiveScheme")
        reach = graph.reachable(_entry(graph, cls, "label_tree"))
        cycles = graph.cycles(reach)
        assert len(cycles) == 1
        assert [key[0][1] for key in cycles[0]] == ["RecursiveScheme._walk"]

    def test_mutual_recursion_is_a_two_node_cycle(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.mutual", "MutualScheme")
        reach = graph.reachable(_entry(graph, cls, "label_tree"))
        cycles = graph.cycles(reach)
        assert len(cycles) == 1
        assert {key[0][1] for key in cycles[0]} == {"descend", "revisit"}

    def test_acyclic_entry_has_no_cycles(self, schemeproj):
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.flat", "FlatScheme")
        reach = graph.reachable(_entry(graph, cls, "label_tree"))
        assert graph.cycles(reach) == []

    def test_insert_path_recursion_is_still_found_by_the_graph(
        self, schemeproj
    ):
        # The verifier narrows recursion to label_tree; the graph itself
        # must still see _shift's self-loop when asked from insert_sibling.
        graph = _graph(schemeproj)
        cls = _cls(schemeproj, "repro.schemes.flat", "FlatScheme")
        reach = graph.reachable(_entry(graph, cls, "insert_sibling"))
        cycles = graph.cycles(reach)
        assert len(cycles) == 1
        assert [key[0][1] for key in cycles[0]] == ["FlatScheme._shift"]
