"""Lint-runner tests: suppression, baselining, selection, and the gate.

The acceptance cases at the bottom run the real repository through
``run_lint`` exactly as CI does: the tree must come back clean, and a
planted uninstrumented division in a scheme module must fail the gate.
"""

from __future__ import annotations

import json
import shutil
from pathlib import Path

from repro.staticcheck.baseline import load_baseline
from repro.staticcheck.lint import LintConfig, run_lint, select_rules
from repro.staticcheck.rules import ALL_RULES

RULEPROJ = Path(__file__).parent / "fixtures" / "ruleproj"
REPO_SRC = Path(__file__).resolve().parents[2] / "src"

#: Expected active findings per rule across the ruleproj fixture tree
#: (REP001 has a fifth, noqa'd occurrence that never becomes a finding).
EXPECTED = {
    "REP001": 4, "REP002": 2, "REP003": 2, "REP004": 3,
    "REP005": 2, "REP006": 3, "REP007": 2, "REP008": 3,
    "REP009": 2,
}


def lint_ruleproj(**overrides):
    config = LintConfig(root=RULEPROJ, ignore=("REP100",), **overrides)
    return run_lint(config)


class TestSelection:
    def test_default_is_every_rule(self):
        assert select_rules(None, ()) == ALL_RULES

    def test_select_narrows(self):
        assert [r.id for r in select_rules(["REP001", "rep003"], ())] == [
            "REP001", "REP003",
        ]

    def test_ignore_drops(self):
        ids = [r.id for r in select_rules(None, ("REP002",))]
        assert "REP002" not in ids
        assert len(ids) == len(ALL_RULES) - 1


class TestRunner:
    def test_full_fixture_run_counts(self):
        result = lint_ruleproj()
        by_rule = {}
        for finding in result.findings:
            by_rule[finding.rule] = by_rule.get(finding.rule, 0) + 1
        assert by_rule == EXPECTED
        assert result.suppressed == 1
        assert result.exit_code == 1

    def test_noqa_suppression_drops_the_finding(self):
        result = run_lint(LintConfig(root=RULEPROJ, select=["REP001"]))
        assert len(result.findings) == EXPECTED["REP001"]
        assert result.suppressed == 1
        assert not any("noqa" in f.snippet for f in result.findings)

    def test_warnings_do_not_fail_the_gate(self):
        result = run_lint(LintConfig(root=RULEPROJ, select=["REP002"]))
        assert result.findings
        assert all(f.severity == "warning" for f in result.findings)
        assert result.exit_code == 0

    def test_payload_is_valid_json_with_summary(self):
        result = lint_ruleproj()
        payload = json.loads(json.dumps(result.to_payload()))
        total = sum(EXPECTED.values())
        summary = payload["summary"]
        assert summary["errors"] + summary["warnings"] == total
        assert summary["suppressed"] == 1
        assert summary["exit_code"] == 1
        assert len(payload["findings"]) == total

    def test_render_mentions_every_active_finding(self):
        result = lint_ruleproj()
        rendered = result.render()
        for rule_id in EXPECTED:
            assert rule_id in rendered
        assert "error(s)" in rendered


class TestBaseline:
    def test_update_then_rerun_is_clean(self, tmp_path):
        baseline = tmp_path / "baseline.jsonl"
        first = lint_ruleproj(baseline_path=baseline, update_baseline=True)
        assert first.baseline_written == sum(EXPECTED.values())
        assert first.exit_code == 0  # everything just baselined

        second = lint_ruleproj(baseline_path=baseline)
        assert second.active == []
        assert second.exit_code == 0
        assert len(second.findings) == sum(EXPECTED.values())

    def test_baseline_entries_carry_fingerprints(self, tmp_path):
        baseline = tmp_path / "baseline.jsonl"
        lint_ruleproj(baseline_path=baseline, update_baseline=True)
        entries = load_baseline(baseline)
        assert len(entries) == sum(EXPECTED.values())
        for fingerprint, entry in entries.items():
            assert entry["fingerprint"] == fingerprint
            assert entry["rule"].startswith("REP")
            assert entry["snippet"]

    def test_new_finding_resurfaces_past_a_stale_baseline(self, tmp_path):
        baseline = tmp_path / "baseline.jsonl"
        run_lint(LintConfig(root=RULEPROJ, select=["REP002"],
                            baseline_path=baseline, update_baseline=True))
        result = lint_ruleproj(baseline_path=baseline)
        assert result.exit_code == 1  # errors were never baselined
        baselined = [f for f in result.findings if f.baselined]
        assert {f.rule for f in baselined} == {"REP002"}

    def test_missing_baseline_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "absent.jsonl") == {}


class TestRepositoryGate:
    def test_repo_src_is_clean_fast(self):
        result = run_lint(LintConfig(root=REPO_SRC, fast=True))
        assert result.active == [], [f.render() for f in result.active]
        assert result.exit_code == 0

    def test_repo_full_gate_with_dynamic_cross_check(self):
        result = run_lint(LintConfig())
        assert result.exit_code == 0
        assert [f for f in result.findings if f.rule == "REP100"] == []
        assert len(result.verdicts) == 17

    def test_planted_division_fails_the_gate(self, tmp_path):
        tree = tmp_path / "src"
        shutil.copytree(REPO_SRC, tree,
                        ignore=shutil.ignore_patterns("__pycache__"))
        planted = tree / "repro" / "schemes" / "planted.py"
        planted.write_text(
            "def midpoint(left, right):\n"
            "    return (left + right) // 2\n",
            encoding="utf-8",
        )
        result = run_lint(LintConfig(root=tree, fast=True))
        assert result.exit_code == 1
        assert any(
            finding.rule == "REP001" and finding.path.endswith("planted.py")
            for finding in result.active
        )

    def test_planted_division_outside_scheme_scope_passes(self, tmp_path):
        tree = tmp_path / "src"
        shutil.copytree(REPO_SRC, tree,
                        ignore=shutil.ignore_patterns("__pycache__"))
        planted = tree / "repro" / "observability" / "planted.py"
        planted.write_text(
            "def midpoint(left, right):\n"
            "    return (left + right) // 2\n",
            encoding="utf-8",
        )
        result = run_lint(LintConfig(root=tree, fast=True))
        assert result.exit_code == 0
