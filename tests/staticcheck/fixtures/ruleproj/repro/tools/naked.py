"""REP004 fixture: document/label state mutated outside the update layers."""


def clobber_labels(document, node, label):
    document.labels[node] = label


def drop_index(document, label):
    document._label_index.pop(label)


def replace_root(document, node):
    document.root = node


def local_dict_is_fine(pairs):
    labels = {}
    for node, label in pairs:
        labels[node] = label
    return labels
