"""REP008 fixture: mutable default arguments."""


def collect(items=[]):
    return items


def index(mapping={},
          *, seen=set()):
    return mapping, seen


def safe(items=None):
    return list(items or ())
