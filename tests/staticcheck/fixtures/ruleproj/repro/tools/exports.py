"""REP007 fixture: __all__ entries and re-exports that do not exist."""

from repro.schemes.bad_arith import no_such_helper
from repro.schemes.bad_arith import uninstrumented

__all__ = ["uninstrumented", "phantom"]
