"""REP006 fixture: metric naming and direct instrument construction."""

from repro.observability.metrics import Counter


def register(registry, kind):
    registry.counter("UpdatesTotal")
    registry.counter("updates.insertions")
    registry.timer(f"scheme.{kind}.latency")
    registry.histogram(f"{kind}.latency")
    return Counter("updates.drops")
