"""REP003 fixture: broad exception handling, good and bad."""


def swallow_everything(action):
    try:
        action()
    except:  # noqa: E722 (the repro linter should flag this itself)
        pass


def swallow_exception(action):
    try:
        action()
    except Exception:
        pass


def isolate(action):
    try:
        action()
    except Exception as error:
        return error


def cleanup_and_reraise(action, log):
    try:
        action()
    except Exception:
        log.close()
        raise


def narrow(action):
    try:
        action()
    except (ValueError, KeyError):
        return None
