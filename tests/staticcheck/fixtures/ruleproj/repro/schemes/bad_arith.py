"""REP001 fixture: raw division-family arithmetic in a scheme module."""


def uninstrumented(total, parts):
    share = total // parts
    rest = total % parts
    ratio = total / parts
    quotient, remainder = divmod(total, parts)
    return share, rest, ratio, quotient, remainder


def excluded_forms(n, name):
    if n % 2:
        n += 1
    text = "node %s" % name
    return n, text


def suppressed(total):
    return total // 3  # repro: noqa[REP001]
