"""REP001 fixture: arithmetic routed through the instrumentation layer."""


def instrumented_share(instruments, total, parts):
    return instruments.divide(total, parts)


def plain_sums(values):
    return sum(values) + len(values)
