"""REP009 fixture: mutators with and without a reachable publish."""


class LabeledDocument:
    def __init__(self):
        self.labels = {}
        self._label_index = {}

    def _publish_rebuild(self, reason):
        pass

    def _assign(self, node, label):
        self.labels[node] = label

    def relabel_all(self):  # clean: mutates and publishes directly
        self.labels.clear()
        self._publish_rebuild("relabel")

    def adopt(self, node, label):  # clean: publish via private helper
        self._assign(node, label)
        self._finish()

    def _finish(self):
        self._publish_rebuild("adopt")

    def graft(self, node, label):  # VIOLATION: mutates, never publishes
        self._assign(node, label)
        self._label_index[label] = node

    def peek(self, node):  # clean: read-only
        return self.labels.get(node)

    def set_text(self, node, value):  # clean: tree-only, no label writes
        node.value = value


class UpdateBatch:
    def __init__(self, document):
        self._document = document
        self._undo = UndoRecord(document)

    def apply(self):  # clean: publishes through the document
        self._document._publish_rebuild("batch-apply")

    def rollback(self):  # clean: publish via the UndoRecord chain
        self._undo.rewind()

    def compact(self):  # VIOLATION: mutation via helper, no publish
        self._scrub()

    def _scrub(self):
        del self._document.labels[0]


class UndoRecord:
    def __init__(self, document):
        self._document = document

    def rewind(self):
        self._document.labels.update({})
        self._document._publish_rebuild("rollback")
