"""REP005 fixture: the enabled-check *_core split, followed and broken."""


def apply_traced(tracer, batch):
    with tracer.span("updates.apply"):
        return batch.run()


def apply_gated(tracer, batch):
    if not tracer.enabled:
        return apply_gated_core(batch)
    with tracer.span("updates.apply"):
        return apply_gated_core(batch)


def apply_gated_core(batch):
    return batch.run()


def relabel_core(batch):
    tracer = get_tracer()
    tracer.record(batch)
    return batch.run()
