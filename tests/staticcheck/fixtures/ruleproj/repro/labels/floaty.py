"""REP002 fixture: exact float comparisons in label-codec code."""


def literal_equality(value):
    return value == 0.5


def cast_inequality(a, b):
    return float(a) != b


def tolerant(a, b):
    return abs(a - b) < 1e-9
