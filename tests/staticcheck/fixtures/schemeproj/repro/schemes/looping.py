"""Fixture scheme: instrumented division plus direct (self) recursion."""

from repro.schemes.base import LabelingScheme


class RecursiveScheme(LabelingScheme):
    def label_tree(self, tree):
        return self._walk(tree, "1")

    def _walk(self, node, label):
        out = [(node, label)]
        for index, child in enumerate(node.children):
            out.extend(self._walk(child, label + "." + str(index)))
        return out

    def insert_sibling(self, left, right):
        return self.instruments.divide(left + right, 2)
