"""Fixture scheme: mutual recursion and a raw, uninstrumented division."""

from repro.schemes.base import LabelingScheme


def descend(node, depth):
    if not node.children:
        return depth
    return max(revisit(child, depth + 1) for child in node.children)


def revisit(node, depth):
    return descend(node, depth)


class MutualScheme(LabelingScheme):
    def label_tree(self, tree):
        return descend(tree, 0)

    def insert_sibling(self, left, right):
        return (left + right) // 2
