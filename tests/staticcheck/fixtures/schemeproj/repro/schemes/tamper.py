"""Fixture scheme: writes an instrumentation counter directly."""

from repro.schemes.base import LabelingScheme


class TamperScheme(LabelingScheme):
    def label_tree(self, tree):
        self.instruments.divisions += 1
        return list(tree.nodes)

    def insert_sibling(self, left, right):
        return left + 1
