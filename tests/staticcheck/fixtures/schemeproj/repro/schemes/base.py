"""Minimal scheme base class for verifier fixtures."""


class LabelingScheme:
    def label_tree(self, tree):
        raise NotImplementedError

    def insert_sibling(self, left, right):
        raise NotImplementedError
