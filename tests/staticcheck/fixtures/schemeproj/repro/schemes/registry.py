"""Fixture registry mirroring the real ``_SCHEME_CLASSES`` shape."""

from typing import Dict, Type

from repro.schemes.base import LabelingScheme
from repro.schemes.flat import FlatScheme
from repro.schemes.looping import RecursiveScheme
from repro.schemes.mutual import MutualScheme
from repro.schemes.phantom import PhantomScheme
from repro.schemes.tamper import TamperScheme

_SCHEME_CLASSES: Dict[str, Type[LabelingScheme]] = {
    "flat": FlatScheme,
    "looping": RecursiveScheme,
    "mutual": MutualScheme,
    "phantom": PhantomScheme,
    "tamper": TamperScheme,
}
