"""Fixture scheme: a recursive_call marker with no actual cycle."""

from repro.schemes.base import LabelingScheme


class PhantomScheme(LabelingScheme):
    def label_tree(self, tree):
        self.instruments.recursive_call(1)
        return list(tree.nodes)

    def insert_sibling(self, left, right):
        return left + 1
