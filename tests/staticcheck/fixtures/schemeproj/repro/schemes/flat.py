"""Fixture scheme: clean bulk labelling; recursion only on the insert path.

The recursion verdict is decided by ``label_tree`` reachability alone, so
``_shift``'s self-recursion (reachable only from ``insert_sibling``) must
not flip it — the same narrowing that keeps Dewey's subtree relabelling
out of its Figure 7 Recursion grade.
"""

from repro.schemes.base import LabelingScheme


class FlatScheme(LabelingScheme):
    def label_tree(self, tree):
        return [(node, index) for index, node in enumerate(tree.nodes)]

    def insert_sibling(self, left, right):
        self._shift(right)
        return left + 1

    def _shift(self, node):
        for child in node.children:
            self._shift(child)
