"""Golden-file tests: each lint rule against its fixture module.

Every fixture mixes true violations with compliant near-misses, so these
tests pin both directions: the rule fires where it must and stays quiet
where it must not.  Assertions key on (file, function/snippet) rather
than line numbers so editing a fixture docstring does not break them.
"""

from __future__ import annotations

import pytest

from repro.staticcheck.rules import ALL_RULES


def findings_for(rule_id, ctx):
    rule = next(rule for rule in ALL_RULES if rule.id == rule_id)
    return sorted(rule.check(ctx), key=lambda f: (f.path, f.line))


def snippets(findings):
    return [finding.snippet.strip() for finding in findings]


def test_rule_catalogue_shape():
    ids = [rule.id for rule in ALL_RULES]
    assert ids == sorted(ids)
    assert len(ids) == len(set(ids))
    for rule in ALL_RULES:
        assert rule.severity in ("warning", "error")
        assert rule.description
        assert rule.name


class TestUninstrumentedDivision:
    def test_flags_every_raw_operator(self, rule_ctx):
        findings = findings_for("REP001", rule_ctx)
        assert all("bad_arith.py" in f.path for f in findings)
        ops = snippets(findings)
        assert any("//" in op for op in ops)
        assert any("%" in op for op in ops)
        assert any("divmod" in op for op in ops)
        # 4 in uninstrumented() plus the noqa'd line (suppression is the
        # runner's job, not the rule's).
        assert len(findings) == 5

    def test_parity_and_string_format_excluded(self, rule_ctx):
        findings = findings_for("REP001", rule_ctx)
        assert not any("% 2" in snippet for snippet in snippets(findings))
        assert not any("node %s" in snippet for snippet in snippets(findings))

    def test_instrumented_module_is_clean(self, rule_ctx):
        findings = findings_for("REP001", rule_ctx)
        assert not any("good_arith" in f.path for f in findings)


class TestFloatEquality:
    def test_flags_literal_and_cast_comparisons(self, rule_ctx):
        findings = findings_for("REP002", rule_ctx)
        assert len(findings) == 2
        assert all("floaty.py" in f.path for f in findings)
        assert all(f.severity == "warning" for f in findings)

    def test_tolerant_comparison_is_clean(self, rule_ctx):
        findings = findings_for("REP002", rule_ctx)
        assert not any("1e-9" in snippet for snippet in snippets(findings))


class TestOverbroadExcept:
    def test_flags_bare_and_swallowing_handlers(self, rule_ctx):
        findings = findings_for("REP003", rule_ctx)
        assert len(findings) == 2
        assert any("except:" in snippet for snippet in snippets(findings))

    def test_binding_reraising_and_narrow_are_clean(self, rule_ctx):
        findings = findings_for("REP003", rule_ctx)
        lines = {f.line for f in findings}
        module = rule_ctx.project.module("repro.tools.excepts")
        for clean in ("as error", "(ValueError, KeyError)"):
            clean_lines = [
                number for number, text in enumerate(module.lines, start=1)
                if clean in text
            ]
            assert clean_lines and not lines.intersection(clean_lines)


class TestNakedMutation:
    def test_flags_state_writes_outside_update_layers(self, rule_ctx):
        findings = findings_for("REP004", rule_ctx)
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert ".labels" in messages
        assert "_label_index" in messages
        assert "document.root" in messages

    def test_bare_local_dict_is_clean(self, rule_ctx):
        findings = findings_for("REP004", rule_ctx)
        assert not any("local_dict_is_fine" in f.snippet for f in findings)
        module = rule_ctx.project.module("repro.tools.naked")
        local_write = [
            number for number, text in enumerate(module.lines, start=1)
            if text.strip() == "labels[node] = label"
        ]
        assert local_write
        assert not {f.line for f in findings}.intersection(local_write)


class TestTracedCoreSplit:
    def test_span_without_enabled_gate(self, rule_ctx):
        findings = findings_for("REP005", rule_ctx)
        assert any("apply_traced" in f.message for f in findings)

    def test_core_function_touching_tracer(self, rule_ctx):
        findings = findings_for("REP005", rule_ctx)
        assert any("relabel_core" in f.message for f in findings)
        assert len(findings) == 2

    def test_gated_wrapper_is_clean(self, rule_ctx):
        findings = findings_for("REP005", rule_ctx)
        assert not any("apply_gated" in f.message for f in findings)


class TestMetricName:
    def test_flags_bad_names_and_direct_construction(self, rule_ctx):
        findings = findings_for("REP006", rule_ctx)
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "UpdatesTotal" in messages
        assert "f-string" in messages
        assert "Counter" in messages

    def test_dotted_names_and_prefixed_fstrings_are_clean(self, rule_ctx):
        findings = findings_for("REP006", rule_ctx)
        assert not any("updates.insertions" in s for s in snippets(findings))
        assert not any("scheme.{kind}" in f.message for f in findings)


class TestExportDrift:
    def test_flags_both_directions(self, rule_ctx):
        findings = findings_for("REP007", rule_ctx)
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "no_such_helper" in messages
        assert "phantom" in messages

    def test_real_reexport_is_clean(self, rule_ctx):
        findings = findings_for("REP007", rule_ctx)
        assert not any("'uninstrumented'" in f.message for f in findings)


class TestMutableDefault:
    def test_flags_all_three_literals(self, rule_ctx):
        findings = findings_for("REP008", rule_ctx)
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "collect" in messages
        assert "index" in messages

    def test_none_default_is_clean(self, rule_ctx):
        findings = findings_for("REP008", rule_ctx)
        assert not any("safe" in f.message for f in findings)


class TestUnpublishedMutation:
    def test_flags_mutators_without_publish_reach(self, rule_ctx):
        findings = findings_for("REP009", rule_ctx)
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "LabeledDocument.graft" in messages
        assert "UpdateBatch.compact" in messages
        assert all(f.severity == "error" for f in findings)

    def test_publish_through_helpers_and_undo_chain_is_clean(self, rule_ctx):
        findings = findings_for("REP009", rule_ctx)
        messages = " ".join(f.message for f in findings)
        for clean in ("relabel_all", "adopt", "apply", "rollback"):
            assert clean not in messages

    def test_reads_and_tree_only_writes_are_clean(self, rule_ctx):
        findings = findings_for("REP009", rule_ctx)
        messages = " ".join(f.message for f in findings)
        assert "peek" not in messages
        assert "set_text" not in messages


@pytest.mark.parametrize("rule", ALL_RULES, ids=lambda rule: rule.id)
def test_every_rule_has_fixture_coverage(rule, rule_ctx):
    """Each shipped rule fires at least once against the fixture tree."""
    assert list(rule.check(rule_ctx))
