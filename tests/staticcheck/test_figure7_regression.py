"""Satellite regression: static == dynamic == Figure 7, all 17 schemes.

Three independent sources must agree on the Division and Recursion
columns: the AST verifier, the runtime instrumentation counters, and
the grades published in the survey's Figure 7 (extension schemes have
no published row and are checked static-vs-dynamic only).
"""

from __future__ import annotations

import pytest

from repro.core.matrix import division_recursion_grades
from repro.core.properties import Compliance
from repro.staticcheck.consistency import check_consistency
from repro.staticcheck.verifier import verify_all

#: Figure 7's Division column: the schemes that perform division.
DIVISION_USERS = {"ordpath", "improved-binary", "qed", "cdqs"}

#: Figure 7's Recursion column: the schemes that label recursively.
RECURSION_USERS = {"sector", "improved-binary", "qed", "cdqs", "vector"}


@pytest.fixture(scope="module")
def verdicts():
    return verify_all()


@pytest.fixture(scope="module")
def grades(verdicts):
    return division_recursion_grades(sorted(verdicts))


def test_all_seventeen_schemes_have_verdicts(verdicts):
    assert len(verdicts) == 17


def test_static_division_users_match_figure7(verdicts):
    users = {name for name, verdict in verdicts.items()
             if verdict.uses_division}
    assert users == DIVISION_USERS


def test_static_recursion_users_match_figure7(verdicts):
    users = {name for name, verdict in verdicts.items()
             if verdict.uses_recursion}
    assert users == RECURSION_USERS


def test_static_agrees_with_dynamic_counters(verdicts, grades):
    for name, verdict in sorted(verdicts.items()):
        row = grades[name]
        assert verdict.uses_division == (
            row["division"] is not Compliance.FULL
        ), f"{name}: static/dynamic division disagreement"
        assert verdict.uses_recursion == (
            row["recursion"] is not Compliance.FULL
        ), f"{name}: static/dynamic recursion disagreement"
        # The counters back the grades: a division user counted at least
        # one division, a free scheme counted exactly zero.
        assert (row["divisions"] > 0) == verdict.uses_division, name
        assert (row["recursive_calls"] > 0) == verdict.uses_recursion, name


def test_static_agrees_with_published_grades(verdicts, grades):
    published_rows = 0
    for name, verdict in sorted(verdicts.items()):
        row = grades[name]
        if row["paper_division"] is not None:
            published_rows += 1
            assert verdict.uses_division == (
                row["paper_division"] != Compliance.FULL.value
            ), f"{name}: static verdict contradicts Figure 7 Division"
        if row["paper_recursion"] is not None:
            assert verdict.uses_recursion == (
                row["paper_recursion"] != Compliance.FULL.value
            ), f"{name}: static verdict contradicts Figure 7 Recursion"
    assert published_rows == 12  # the paper grades 12 of the 17 schemes


def test_full_consistency_check_reports_no_drift():
    report = check_consistency()
    assert report.consistent, [drift.to_payload()
                               for drift in report.drifts]


def test_division_evidence_is_instrumented_or_suppressed(verdicts):
    """Every reachable division op is visible to the counters or carries
    a justified noqa — the invariant the whole gate exists to protect."""
    for name, verdict in verdicts.items():
        for site in verdict.division_sites:
            assert site.instrumented or site.suppressed or site.excluded, (
                f"{name}: {site.path}:{site.line} `{site.op}` is invisible "
                f"to the instrumentation"
            )
