"""Consistency-checker tests: structural drifts on the scheme fixture."""

from __future__ import annotations

from repro.staticcheck.consistency import check_consistency, structural_drifts
from repro.staticcheck.verifier import verify_all


def test_structural_drifts_name_each_failure_mode(schemeproj):
    drifts = structural_drifts(verify_all(schemeproj))
    by_kind = {}
    for drift in drifts:
        by_kind.setdefault(drift.kind, []).append(drift)
    assert set(by_kind) == {
        "uninstrumented-division",
        "phantom-recursion-marker",
        "counter-tampering",
    }
    (division,) = by_kind["uninstrumented-division"]
    assert division.scheme == "mutual"
    assert division.path.endswith("mutual.py")
    (phantom,) = by_kind["phantom-recursion-marker"]
    assert phantom.scheme == "phantom"
    (tamper,) = by_kind["counter-tampering"]
    assert tamper.scheme == "tamper"


def test_clean_schemes_produce_no_drifts(schemeproj):
    verdicts = verify_all(schemeproj)
    drifted = {drift.scheme
               for drift in structural_drifts(verdicts)}
    assert "flat" not in drifted
    assert "looping" not in drifted


def test_report_payload_and_consistent_flag(schemeproj):
    report = check_consistency(project=schemeproj, include_dynamic=False)
    assert not report.consistent
    payload = report.to_payload()
    assert payload["consistent"] is False
    assert len(payload["drifts"]) == len(report.drifts)
    assert set(payload["schemes"]) == set(report.verdicts)
