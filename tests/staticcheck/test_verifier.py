"""Verifier tests over the miniature scheme registry fixture."""

from __future__ import annotations

import json

import pytest

from repro.errors import FrameworkError
from repro.staticcheck.verifier import scheme_classes, verify_all


@pytest.fixture(scope="module")
def verdicts(schemeproj):
    return verify_all(schemeproj)


def test_registry_dict_literal_is_read_statically(schemeproj):
    mapping = scheme_classes(schemeproj)
    assert set(mapping) == {"flat", "looping", "mutual", "phantom", "tamper"}
    assert mapping["looping"].name == "RecursiveScheme"


def test_missing_registry_is_a_framework_error(ruleproj):
    with pytest.raises(FrameworkError):
        scheme_classes(ruleproj)


def test_clean_scheme_is_free_on_both_axes(verdicts):
    flat = verdicts["flat"]
    assert not flat.uses_division
    assert not flat.uses_recursion
    assert flat.division_sites == []
    assert flat.recursion_cycles == []


def test_insert_path_recursion_does_not_flip_the_verdict(verdicts):
    # _shift recurses, but only insert_sibling reaches it; the Recursion
    # grade is about bulk labelling (label_tree), as in Figure 7.
    assert not verdicts["flat"].uses_recursion


def test_instrumented_division_counts_as_division(verdicts):
    looping = verdicts["looping"]
    assert looping.uses_division
    assert any(site.instrumented for site in looping.division_sites)


def test_direct_recursion_yields_a_self_cycle(verdicts):
    looping = verdicts["looping"]
    assert looping.uses_recursion
    (cycle,) = looping.recursion_cycles
    assert any("_walk" in name for name in cycle.functions)


def test_raw_division_counts_with_evidence(verdicts):
    mutual = verdicts["mutual"]
    assert mutual.uses_division
    (site,) = [s for s in mutual.division_sites if not s.instrumented]
    assert site.op == "//"
    assert site.path.endswith("mutual.py")
    assert site.line > 0


def test_mutual_recursion_yields_a_two_function_cycle(verdicts):
    mutual = verdicts["mutual"]
    assert mutual.uses_recursion
    (cycle,) = mutual.recursion_cycles
    assert len(cycle.functions) == 2


def test_phantom_marker_without_cycle(verdicts):
    phantom = verdicts["phantom"]
    assert not phantom.uses_recursion
    assert phantom.recursion_markers


def test_counter_tampering_is_collected(verdicts):
    tamper = verdicts["tamper"]
    assert [attr for _p, _l, attr in tamper.counter_writes] == ["divisions"]


def test_verdict_payloads_are_json_serialisable(verdicts):
    for verdict in verdicts.values():
        payload = json.loads(json.dumps(verdict.to_payload()))
        assert payload["scheme"] == verdict.name
        assert payload["uses_division"] == verdict.uses_division
