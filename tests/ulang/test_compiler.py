"""Compiler/runtime tests: sequential semantics over one UpdateBatch."""

from __future__ import annotations

import pytest

from conftest import labeled
from repro.axes.xpath import xpath
from repro.errors import ULangTargetError
from repro.ulang import parse_program, resolve_targets, run_program
from repro.xmlmodel.parser import parse

XML = (
    "<library>"
    "<section name='db'>"
    "<book lang='en'><title>TCP</title><price>30</price></book>"
    "<book lang='de'><title>DB</title><price>20</price></book>"
    "</section>"
    "<section name='web'>"
    "<book lang='en'><title>Web</title><price>10</price></book>"
    "</section>"
    "</library>"
)


@pytest.fixture
def ldoc():
    return labeled(parse(XML), "ordpath")


class TestResolveTargets:
    def test_absolute_child_chain(self, ldoc):
        nodes = resolve_targets(ldoc, "/library/section/book")
        assert len(nodes) == 3

    def test_descendant_with_predicate(self, ldoc):
        nodes = resolve_targets(ldoc, "//book[@lang='de']")
        assert [n.name for n in nodes] == ["book"]

    def test_attribute_target(self, ldoc):
        nodes = resolve_targets(ldoc, "/library/section/@name")
        assert [n.value for n in nodes] == ["db", "web"]

    def test_union_dedupes_in_document_order(self, ldoc):
        nodes = resolve_targets(ldoc, "//book | //book[@lang='de']")
        assert len(nodes) == 3

    def test_agrees_with_label_driven_evaluator(self, ldoc):
        for path in ("//book", "/library/section[2]/book/title",
                     "//price", "//section[@name='db']//title",
                     "//book[price]"):
            structural = {n.node_id for n in resolve_targets(ldoc, path)}
            evaluated = {n.node_id for n in xpath(ldoc, path)}
            assert structural == evaluated, path


class TestExecution:
    def test_insert_into_appends(self, ldoc):
        run_program(ldoc, "insert <book lang='fr'/> into "
                          "/library/section[@name='web']")
        books = xpath(ldoc, "/library/section[2]/book")
        assert len(books) == 2
        assert books[-1].attribute("lang").value == "fr"

    def test_insert_before_and_after(self, ldoc):
        run_program(ldoc, "insert <x/> before //book[@lang='de'];"
                          "insert <y/> after //book[@lang='de']")
        children = [n.name for n in
                    resolve_targets(ldoc, "/library/section[1]/*")]
        assert children == ["book", "x", "book", "y"]

    def test_sequential_statements_see_earlier_effects(self, ldoc):
        # The rename happens first, so the delete's target matches the
        # renamed nodes — FLUX-style sequencing, not snapshot semantics.
        run_program(ldoc, "rename //title as heading; delete //heading")
        assert xpath(ldoc, "//title") == []
        assert xpath(ldoc, "//heading") == []

    def test_delete_nested_targets_outermost_only(self, ldoc):
        result = run_program(ldoc, "delete //section | //section/book")
        assert result.deletions == 2  # the two sections, not 2 + 3
        assert xpath(ldoc, "//book") == []

    def test_replace_element_text_and_attribute(self, ldoc):
        run_program(ldoc, "replace value of //book[@lang='de']/price "
                          "with '25';"
                          "replace value of /library/section[1]/@name "
                          "with 'databases'")
        price = xpath(ldoc, "//book[@lang='de']/price")[0]
        assert price.children[0].value == "25"
        assert xpath(ldoc, "//section[@name='databases']")

    def test_move_into(self, ldoc):
        run_program(ldoc, "move //book[@lang='de'] into "
                          "/library/section[@name='web']")
        assert len(xpath(ldoc, "/library/section[1]/book")) == 1
        assert len(xpath(ldoc, "/library/section[2]/book")) == 2

    def test_move_within_same_parent(self, ldoc):
        # The detach happens before the re-insert, so the slot must be
        # computed against the post-detach child list.
        run_program(ldoc, "move //book[@lang='en'] into "
                          "/library/section[1]")
        langs = [b.attribute("lang").value
                 for b in xpath(ldoc, "/library/section[1]/book")]
        assert langs == ["de", "en", "en"]
        ldoc.verify_order()

    def test_empty_target_is_a_noop(self, ldoc):
        result = run_program(ldoc, "delete //nonexistent")
        assert result.operations == 0
        assert len(xpath(ldoc, "//book")) == 3

    def test_order_invariant_holds_after_program(self, ldoc):
        run_program(ldoc, "insert <z/> into /library;"
                          "move //book[@lang='de'] into /library/section[2];"
                          "delete //price")
        ldoc.verify_order()

    def test_labels_cover_inserted_nodes(self, ldoc):
        before = len(ldoc.labels)
        run_program(ldoc, "insert <a><b/></a> into /library")
        assert len(ldoc.labels) == before + 2


class TestFailures:
    def test_move_with_ambiguous_destination(self, ldoc):
        with pytest.raises(ULangTargetError, match="exactly one"):
            run_program(ldoc, "move //price into //section")

    def test_move_zero_sources_is_noop_before_destination_check(self, ldoc):
        result = run_program(ldoc, "move //nonexistent into //section")
        assert result.operations == 0

    def test_insert_before_root_fails(self, ldoc):
        with pytest.raises(ULangTargetError, match="root"):
            run_program(ldoc, "insert <x/> before /library")

    def test_failure_rolls_back_earlier_statements(self, ldoc):
        with pytest.raises(ULangTargetError):
            run_program(ldoc, "delete //book[@lang='de'];"
                              "move //price into //section")
        # The delete must have been undone with the batch.
        assert len(xpath(ldoc, "//book")) == 3
        ldoc.verify_order()


class TestPlanCollection:
    def test_collect_plan_pairs_prediction_with_actuals(self, ldoc):
        result, plan = run_program(
            ldoc, "insert <book/> into /library/section[1]",
            collect_plan=True,
        )
        assert plan.operations == 1
        assert plan.actual_relabel_passes == result.relabel_passes
        assert plan.actual_relabeled_nodes == result.relabeled_nodes
