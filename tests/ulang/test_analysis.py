"""Analyzer golden tests: verdicts, UPD rules, suppression, baseline."""

from __future__ import annotations

import pytest

from conftest import labeled
from repro.observability.stats import StatsCollector
from repro.ulang import analyze_program, check_program, paths_may_interfere
from repro.ulang.analysis import RULES, can_prefix, path_chains
from repro.axes.xpath_ast import parse_xpath
from repro.xmlmodel.parser import parse

XML = (
    "<library>"
    "<section name='db'>"
    "<book lang='en'><title>TCP</title><price>30</price></book>"
    "<book lang='de'><title>DB</title><price>20</price></book>"
    "</section>"
    "<section name='web'>"
    "<book lang='en'><title>Web</title><price>10</price></book>"
    "</section>"
    "</library>"
)


@pytest.fixture
def ldoc():
    return labeled(parse(XML), "ordpath")


@pytest.fixture
def stats(ldoc):
    return StatsCollector.collect(ldoc)


def rules_fired(report):
    return sorted({finding.rule for finding in report.findings})


class TestChains:
    def test_descendant_gap_covers_child(self):
        [chain] = path_chains(parse_xpath("/a//b")[0])
        [child] = path_chains(parse_xpath("/a/b")[0])
        assert can_prefix(chain, child) and can_prefix(child, chain)

    def test_disjoint_names_never_prefix(self):
        [a] = path_chains(parse_xpath("/r/a")[0])
        [b] = path_chains(parse_xpath("/r/b")[0])
        assert not can_prefix(a, b)
        assert not can_prefix(b, a)

    def test_ancestor_is_prefix_not_vice_versa(self):
        [anc] = path_chains(parse_xpath("/r/a")[0])
        [desc] = path_chains(parse_xpath("/r/a/b/c")[0])
        assert can_prefix(anc, desc)
        assert not can_prefix(desc, anc)

    def test_opaque_axis_widens_to_universal(self):
        chains = path_chains(parse_xpath("//a/parent::b")[0])
        assert chains == [(("gap",),)]


class TestPathsMayInterfere:
    @pytest.mark.parametrize("update,query,expected", [
        ("//a/b", "//b", True),
        ("//a/b", "//a/b/c", True),     # query below update target
        ("/r/a", "/r", True),           # query above update target
        ("/r/a", "/r/b", False),
        # Two // paths always may-interfere: nothing rules out a title
        # nested under a price without schema knowledge.
        ("//price", "//title", True),
        ("/r/*/x", "/r/q/x", True),     # wildcard overlaps any name
        ("//a", "/b/c | //a/d", True),  # union branch overlaps
        ("/r/a", "/s//a", False),       # roots differ
    ])
    def test_pairs(self, update, query, expected):
        assert paths_may_interfere(update, query) is expected


class TestVerdicts:
    def test_delete_conflicts_with_query_below_target(self, ldoc):
        report = check_program("delete //book[@lang='de'];",
                               queries=["//price"], ldoc=ldoc)
        [verdict] = report.verdicts
        assert not verdict.independent
        assert verdict.lines == [1]
        assert verdict.evidence

    def test_attribute_query_proven_independent_of_book_delete(self, ldoc):
        report = check_program("delete //book;",
                               queries=["/library/section/@name"],
                               ldoc=ldoc)
        [verdict] = report.verdicts
        assert verdict.independent

    def test_replace_value_only_hits_value_predicates(self, ldoc):
        report = check_program(
            "replace value of //price with '0';",
            queries=["//book[@lang='en']/title",   # independent: no price
                     "//book[price='30']",          # value predicate: conflict
                     "//price"],                    # selects the node: conflict
            ldoc=ldoc)
        verdicts = {v.query: v.independent for v in report.verdicts}
        assert verdicts["//book[@lang='en']/title"] is True
        assert verdicts["//book[price='30']"] is False
        assert verdicts["//price"] is False

    def test_insert_conflicts_only_where_new_nodes_can_match(self, ldoc):
        program = "insert <book lang='fr'/> into /library/section[2];"
        report = check_program(
            program,
            queries=["//book",                       # new node matches
                     "/library/section[2]/book[1]",  # positional window
                     "//title"],                     # fragment has no title
            ldoc=ldoc)
        verdicts = {v.query: v.independent for v in report.verdicts}
        assert verdicts["//book"] is False
        assert verdicts["/library/section[2]/book[1]"] is False
        assert verdicts["//title"] is True

    def test_rename_conflicts_with_old_and_new_name(self, ldoc):
        report = check_program(
            "rename //title as heading;",
            queries=["//title", "//heading", "/library/section/@name"],
            ldoc=ldoc)
        verdicts = {v.query: v.independent for v in report.verdicts}
        assert verdicts["//title"] is False
        assert verdicts["//heading"] is False
        assert verdicts["/library/section/@name"] is True

    def test_independent_verdict_produces_no_upd004(self, ldoc):
        report = check_program("delete //book;",
                               queries=["/library/section/@name"],
                               ldoc=ldoc)
        assert "UPD004" not in rules_fired(report)
        assert report.exit_code == 0


class TestRuleFindings:
    def test_upd001_dead_update(self, stats):
        report = analyze_program("delete //phantom/book;", stats=stats)
        assert "UPD001" in rules_fired(report)

    def test_upd001_respects_names_created_by_earlier_statements(self, stats):
        report = analyze_program(
            "insert <phantom/> into /library; delete //phantom;",
            stats=stats)
        assert "UPD001" not in rules_fired(report)
        renamed = analyze_program(
            "rename //title as phantom; delete //phantom;", stats=stats)
        assert "UPD001" not in rules_fired(renamed)

    def test_upd002_aliasing_after_delete(self):
        report = analyze_program(
            "delete //section; replace value of //section/book/price "
            "with '0';")
        assert "UPD002" in rules_fired(report)
        [finding] = [f for f in report.findings if f.rule == "UPD002"]
        assert finding.line == 1  # single-line program: second statement
        assert "delete" in finding.message

    def test_upd002_quiet_for_disjoint_regions(self):
        report = analyze_program("delete //a; delete //b;")
        assert "UPD002" not in rules_fired(report)

    def test_upd003_move_into_own_subtree(self):
        report = analyze_program("move //section into //section/book;")
        assert "UPD003" in rules_fired(report)
        assert report.exit_code == 1

    def test_upd003_quiet_for_disjoint_move(self):
        report = analyze_program("move //book into /archive;")
        assert "UPD003" not in rules_fired(report)

    def test_upd005_storm_on_relabel_prone_scheme(self, stats):
        report = analyze_program("delete //book | //section | //title;",
                                 stats=stats, scheme_name="dewey")
        assert "UPD005" in rules_fired(report)

    def test_upd005_quiet_on_persistent_scheme(self, stats):
        report = analyze_program("delete //book | //section | //title;",
                                 stats=stats, scheme_name="ordpath")
        assert "UPD005" not in rules_fired(report)

    def test_upd005_quiet_for_small_extent(self, stats):
        report = analyze_program("delete //book[@lang='de']/title;",
                                 stats=stats, scheme_name="dewey")
        assert "UPD005" not in rules_fired(report)


class TestSuppressionAndBaseline:
    def test_noqa_suppresses_finding(self, ldoc):
        noisy = check_program("delete //price;", queries=["//price"],
                              ldoc=ldoc)
        assert noisy.exit_code == 1
        quiet = check_program("delete //price;  # noqa[UPD004]",
                              queries=["//price"], ldoc=ldoc)
        assert quiet.exit_code == 0
        assert quiet.suppressed == 1
        # The verdict itself is still reported: noqa silences the
        # finding, not the analysis.
        assert not quiet.verdicts[0].independent

    def test_baseline_grandfathers_findings(self, ldoc, tmp_path):
        from repro.staticcheck.baseline import write_baseline

        first = check_program("delete //price;", queries=["//price"],
                              ldoc=ldoc)
        baseline = tmp_path / "UPD_BASELINE.jsonl"
        write_baseline(baseline, first.findings)
        second = check_program("delete //price;", queries=["//price"],
                               ldoc=ldoc, baseline_path=baseline)
        assert second.exit_code == 0
        assert all(f.baselined for f in second.findings)


class TestReportShape:
    def test_payload_schema(self, ldoc):
        report = check_program("delete //book;", queries=["//price"],
                               ldoc=ldoc)
        payload = report.to_payload()
        assert payload["schema_version"] == 1
        assert payload["summary"]["may_conflict"] == 1
        assert payload["verdicts"][0]["verdict"] == "may-conflict"
        assert payload["prediction"]["persistent_labels"] is True
        assert payload["prediction"]["predicted_relabel_extent"] == 0

    def test_prediction_extent_on_relabel_prone_scheme(self, ldoc, stats):
        report = analyze_program("delete //book;", stats=stats,
                                 scheme_name="dewey")
        assert (report.prediction["predicted_relabel_extent"]
                == stats.node_count)

    def test_render_mentions_verdicts_and_counts(self, ldoc):
        report = check_program("delete //book;",
                               queries=["//price",
                                        "/library/section/@name"],
                               ldoc=ldoc)
        text = report.render()
        assert "may-conflict" in text
        assert "independent" in text
        assert "1/2" in text

    def test_rule_catalogue_is_complete(self):
        assert sorted(RULES) == ["UPD001", "UPD002", "UPD003", "UPD004",
                                 "UPD005"]
        for name, severity, description in RULES.values():
            assert severity in ("warning", "error")
            assert name and description
