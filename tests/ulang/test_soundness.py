"""The analyzer's soundness battery.

The one promise the independence analysis makes: an ``independent``
verdict is a *proof*.  So for every (program, query) pair in the corpus
and every labelling scheme in the registry, whenever the analyzer says
independent, executing the program must leave the query's results
bit-identical — same nodes, same names, same values.

May-conflict verdicts carry no such promise (they are the conservative
fallback), so the battery asserts nothing about them beyond bookkeeping:
the corpus deliberately mixes pairs where the update really does change
the results with pairs where the conservative answer is a false alarm.
"""

from __future__ import annotations

import pytest

from conftest import all_scheme_names, labeled
from repro.axes.xpath import xpath
from repro.ulang import check_program, parse_program, run_program
from repro.xmlmodel.parser import parse

LIBRARY = (
    "<library>"
    "<section name='db'>"
    "<book lang='en'><title>TCP</title><price>30</price></book>"
    "<book lang='de'><title>DB</title><price>20</price></book>"
    "</section>"
    "<section name='web'>"
    "<book lang='en'><title>Web</title><price>10</price></book>"
    "</section>"
    "<archive/>"
    "</library>"
)

DBLP = (
    "<dblp>"
    "<article key='a1'><author>Ann</author><year>2003</year></article>"
    "<article key='a2'><author>Bob</author><year>2004</year></article>"
    "<proceedings key='p1'><editor>Cid</editor></proceedings>"
    "</dblp>"
)

#: (xml, program, query) — executed under every scheme; the analyzer's
#: verdict decides whether bit-identical results are asserted.
CORPUS = [
    # --- inserts ------------------------------------------------------
    (LIBRARY, "insert <book lang='fr'/> into /library/section[2]",
     "//title"),
    (LIBRARY, "insert <book lang='fr'/> into /library/section[2]",
     "//book"),
    (LIBRARY, "insert <review score='5'/> after //book[@lang='de']",
     "/library/section/@name"),
    (LIBRARY, "insert <price>1</price> into //archive",
     "//book[price='30']"),
    (DBLP, "insert <article key='a3'><author>Dee</author></article> "
           "into /dblp",
     "/dblp/article[1]/author"),
    # --- deletes ------------------------------------------------------
    (LIBRARY, "delete //book[@lang='de']", "//price"),
    (LIBRARY, "delete //book", "/library/section/@name"),
    (LIBRARY, "delete //price", "//book[price='30']"),
    (LIBRARY, "delete /library/archive", "/library/section/book/title"),
    (DBLP, "delete //proceedings", "/dblp/article/author"),
    # --- replace value ------------------------------------------------
    (LIBRARY, "replace value of //price with '0'", "//price"),
    (LIBRARY, "replace value of //price with '0'",
     "//book[@lang='en']/title"),
    (LIBRARY, "replace value of /library/section[1]/@name with 'x'",
     "//book[price='30']"),
    (DBLP, "replace value of //year with '2005'", "//article[@key='a1']"),
    # --- renames ------------------------------------------------------
    (LIBRARY, "rename //title as heading", "//title"),
    (LIBRARY, "rename //title as heading", "/library/section/@name"),
    (DBLP, "rename //editor as chair", "/dblp/article/author"),
    # --- moves --------------------------------------------------------
    (LIBRARY, "move //book[@lang='de'] into /library/archive", "//book"),
    (LIBRARY, "move //book[@lang='de'] into /library/archive",
     "/library/section/@name"),
    (DBLP, "move //proceedings into /dblp", "//author"),
    # --- multi-statement programs ------------------------------------
    (LIBRARY,
     "rename //title as heading; replace value of //heading with 'X'",
     "/library/section/@name"),
    (LIBRARY,
     "insert <tag/> into //archive; delete //tag",
     "//book[@lang='en']"),
    (DBLP,
     "delete //year; insert <month>6</month> into //article",
     "/dblp/proceedings/editor"),
]


def fingerprint(nodes):
    """Identity + name + own value of each result, in result order.

    Chosen so labels (which relabelling rewrites) and positions in
    sibling lists (which structural edits shift) are *not* part of the
    identity — the analyzer promises unchanged results, not unchanged
    physical encodings.
    """
    out = []
    for node in nodes:
        value = node.value if node.is_attribute else node.text_value()
        out.append((node.node_id, node.name, value))
    return out


def corpus_id(entry):
    _xml, program, query = entry
    return f"{program[:30]}...vs...{query}"


@pytest.mark.parametrize("scheme_name", all_scheme_names())
@pytest.mark.parametrize("entry", CORPUS, ids=corpus_id)
def test_independent_verdicts_are_sound(entry, scheme_name):
    xml, program_text, query = entry
    ldoc = labeled(parse(xml), scheme_name)
    program = parse_program(program_text)
    report = check_program(program, queries=[query], ldoc=ldoc)
    [verdict] = report.verdicts

    before = fingerprint(xpath(ldoc, query))
    run_program(ldoc, program)
    after = fingerprint(xpath(ldoc, query))

    if verdict.independent:
        assert after == before, (
            f"FALSE INDEPENDENCE under {scheme_name}: {program_text!r} "
            f"changed {query!r}: {before} -> {after}"
        )
    ldoc.verify_order()


def test_corpus_has_both_verdicts():
    """The battery must exercise real proofs, not only fallbacks."""
    independent = conflicting = 0
    for xml, program_text, query in CORPUS:
        ldoc = labeled(parse(xml), "ordpath")
        report = check_program(program_text, queries=[query], ldoc=ldoc)
        if report.verdicts[0].independent:
            independent += 1
        else:
            conflicting += 1
    assert independent >= 8
    assert conflicting >= 8
