"""Parser tests: grammar coverage, comments/noqa, and error reporting."""

from __future__ import annotations

import pytest

from repro.errors import ULangSyntaxError
from repro.ulang import (
    DeleteStatement,
    InsertStatement,
    MoveStatement,
    RenameStatement,
    ReplaceValueStatement,
    parse_program,
)


class TestGrammar:
    def test_all_five_statement_kinds(self):
        program = parse_program(
            "insert <a/> into /r;"
            "delete //a;"
            "replace value of /r/b with 'v';"
            "rename //b as c;"
            "move /r/a before /r/b"
        )
        kinds = [type(s) for s in program.statements]
        assert kinds == [InsertStatement, DeleteStatement,
                         ReplaceValueStatement, RenameStatement,
                         MoveStatement]

    def test_insert_positions(self):
        for position in ("into", "before", "after"):
            program = parse_program(f"insert <x/> {position} /r/a")
            assert program.statements[0].position == position

    def test_trailing_semicolon_allowed(self):
        assert len(parse_program("delete //a;").statements) == 1

    def test_fragment_with_nesting_and_attributes(self):
        program = parse_program(
            'insert <entry year="2024"><name>x</name></entry> into /dblp'
        )
        statement = program.statements[0]
        assert statement.fragment_xml.startswith("<entry")
        assert ["entry"] in statement.fragment_paths
        assert ["entry", "year"] in statement.fragment_paths
        assert ["entry", "name"] in statement.fragment_paths

    def test_fragment_with_gt_inside_quotes(self):
        program = parse_program("insert <a note='x>y'/> into /r")
        assert program.statements[0].fragment_xml == "<a note='x>y'/>"

    def test_replace_string_both_quotes(self):
        single = parse_program("replace value of /r/a with 'v1'")
        double = parse_program('replace value of /r/a with "v2"')
        assert single.statements[0].value == "v1"
        assert double.statements[0].value == "v2"

    def test_path_with_predicate_containing_stop_word(self):
        # "with" inside a predicate string must not end the path operand.
        program = parse_program(
            "replace value of //a[@k='with into'] with 'v'"
        )
        assert program.statements[0].target == "//a[@k='with into']"
        assert program.statements[0].value == "v"

    def test_target_paths_are_preparsed(self):
        program = parse_program("delete //a/b | /r/c")
        assert len(program.statements[0].target_paths) == 2


class TestCommentsAndNoqa:
    def test_comments_are_stripped(self):
        program = parse_program(
            "# leading comment\n"
            "delete //a;  # trailing comment\n"
        )
        assert len(program.statements) == 1
        assert program.statements[0].line == 2

    def test_hash_inside_string_is_not_a_comment(self):
        program = parse_program("replace value of /r/a with '#5'")
        assert program.statements[0].value == "#5"

    def test_noqa_specific_rule(self):
        program = parse_program("delete //a;  # noqa[UPD004]\ndelete //b")
        assert program.is_suppressed(1, "UPD004")
        assert not program.is_suppressed(1, "UPD002")
        assert not program.is_suppressed(2, "UPD004")

    def test_noqa_bare_suppresses_everything(self):
        program = parse_program("delete //a  # noqa")
        assert program.is_suppressed(1, "UPD001")
        assert program.is_suppressed(1, "UPD004")

    def test_statement_lines_survive_comment_blanking(self):
        program = parse_program(
            "# header\n# more\ndelete //a;\n# between\ndelete //b\n"
        )
        assert [s.line for s in program.statements] == [3, 5]


class TestErrors:
    def test_empty_program(self):
        with pytest.raises(ULangSyntaxError):
            parse_program("   # only a comment\n")

    def test_unknown_keyword(self):
        with pytest.raises(ULangSyntaxError, match="expected one of"):
            parse_program("frobnicate //a")

    def test_missing_semicolon(self):
        with pytest.raises(ULangSyntaxError, match="expected ';'"):
            parse_program("delete //a delete //b")

    def test_bad_xpath_reports_line(self):
        with pytest.raises(ULangSyntaxError) as excinfo:
            parse_program("delete //a;\ndelete ?bogus")
        assert excinfo.value.line == 2

    def test_unterminated_fragment(self):
        with pytest.raises(ULangSyntaxError, match="unterminated"):
            parse_program("insert <a><b></a> into /r")

    def test_unterminated_string(self):
        with pytest.raises(ULangSyntaxError, match="unterminated"):
            parse_program("replace value of /r/a with 'oops")

    def test_bad_fragment_xml(self):
        with pytest.raises(ULangSyntaxError, match="bad XML fragment"):
            parse_program("insert <a><b></c></a> into /r")
