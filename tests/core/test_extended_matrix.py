"""Extension rows: the framework applied to the section 6 future work."""

import pytest

from repro.core.matrix import EvaluationFramework
from repro.core.properties import Compliance, Property


@pytest.fixture(scope="module")
def framework():
    return EvaluationFramework()


class TestDDERow:
    @pytest.fixture(scope="class")
    def row(self):
        return EvaluationFramework().evaluate("dde")

    def test_fully_dynamic(self, row):
        assert row.grades[Property.PERSISTENT_LABELS] is Compliance.FULL
        assert row.grades[Property.OVERFLOW_FREEDOM] is Compliance.FULL

    def test_keeps_dewey_relationships(self, row):
        assert row.grades[Property.XPATH_EVALUATION] is Compliance.FULL
        assert row.grades[Property.LEVEL_ENCODING] is Compliance.FULL

    def test_mediant_arithmetic_never_divides(self, row):
        assert row.grades[Property.DIVISION_FREEDOM] is Compliance.FULL

    def test_marked_extension(self, row):
        assert row.extension


class TestCDBSRow:
    @pytest.fixture(scope="class")
    def row(self):
        return EvaluationFramework().evaluate("cdbs")

    def test_persistent_but_overflow_prone(self, row):
        # "these improvements were made possible through the use of
        # fixed length bit encoding ... subject to the overflow problem"
        assert row.grades[Property.PERSISTENT_LABELS] is Compliance.FULL
        assert row.grades[Property.OVERFLOW_FREEDOM] is Compliance.NONE

    def test_orthogonal_strategy(self, row):
        assert row.grades[Property.ORTHOGONALITY] is Compliance.FULL


class TestPrimeRow:
    @pytest.fixture(scope="class")
    def row(self):
        return EvaluationFramework().evaluate("prime")

    def test_sc_renumbering_costs_persistence(self, row):
        assert row.grades[Property.PERSISTENT_LABELS] is Compliance.NONE

    def test_divisibility_gives_full_xpath(self, row):
        assert row.grades[Property.XPATH_EVALUATION] is Compliance.FULL

    def test_no_level_encoding(self, row):
        assert row.grades[Property.LEVEL_ENCODING] is Compliance.NONE


class TestCohenRow:
    def test_middle_insertions_relabel(self, framework):
        row = framework.evaluate("cohen")
        assert row.grades[Property.PERSISTENT_LABELS] is Compliance.NONE
        assert row.grades[Property.OVERFLOW_FREEDOM] is Compliance.NONE


class TestComDRow:
    def test_inherits_lsdx_grades(self, framework):
        comd = framework.evaluate("comd")
        lsdx = framework.evaluate("lsdx")
        assert comd.grades == lsdx.grades
