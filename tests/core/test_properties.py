"""The property vocabulary and the published Figure 7 data."""

import pytest

from repro.core.properties import (
    PAPER_FIGURE_7,
    PAPER_ROW_NAMES,
    PROPERTY_DEFINITIONS,
    PROPERTY_ORDER,
    Compliance,
    DocumentOrderApproach,
    EncodingRepresentation,
    Property,
)


class TestCompliance:
    def test_letters(self):
        assert str(Compliance.FULL) == "F"
        assert str(Compliance.PARTIAL) == "P"
        assert str(Compliance.NONE) == "N"

    def test_from_letter(self):
        assert Compliance.from_letter("F") is Compliance.FULL
        assert Compliance.from_letter("P") is Compliance.PARTIAL
        assert Compliance.from_letter("N") is Compliance.NONE

    def test_from_letter_rejects_unknown(self):
        with pytest.raises(ValueError):
            Compliance.from_letter("X")


class TestVocabulary:
    def test_eight_graded_properties(self):
        assert len(PROPERTY_ORDER) == 8
        assert len(set(PROPERTY_ORDER)) == 8

    def test_every_property_has_a_definition(self):
        for prop in Property:
            assert PROPERTY_DEFINITIONS[prop]

    def test_order_approaches(self):
        assert {str(a) for a in DocumentOrderApproach} == {
            "Global", "Local", "Hybrid",
        }
        assert {str(e) for e in EncodingRepresentation} == {
            "Fixed", "Variable",
        }


class TestPaperMatrixData:
    def test_twelve_rows(self):
        assert len(PAPER_FIGURE_7) == 12
        assert set(PAPER_FIGURE_7) == set(PAPER_ROW_NAMES)

    def test_every_row_has_ten_columns(self):
        for name, row in PAPER_FIGURE_7.items():
            assert len(row) == 10, name
            assert row[0] in ("Global", "Local", "Hybrid")
            assert row[1] in ("Fixed", "Variable")
            for grade in row[2:]:
                assert grade in ("F", "P", "N")

    def test_section_5_2_uniqueness_claim_is_an_erratum(self):
        # Section 5.2 claims "No two labelling schemes share the same
        # properties", but Figure 7 itself contradicts it: the XPath
        # Accelerator and XRel rows are identical, as are the DeweyID
        # and LSDX rows.  We record the erratum (see EXPERIMENTS.md)
        # rather than the claim.
        assert PAPER_FIGURE_7["prepost"] == PAPER_FIGURE_7["xrel"]
        assert PAPER_FIGURE_7["dewey"] == PAPER_FIGURE_7["lsdx"]
        rows = list(PAPER_FIGURE_7.values())
        assert len(set(rows)) == len(rows) - 2

    def test_cdqs_has_most_full_grades(self):
        # Section 5.2's conclusion, verified against the published data.
        def fulls(row):
            return sum(1 for grade in row[2:] if grade == "F")

        best = max(PAPER_FIGURE_7, key=lambda name: fulls(PAPER_FIGURE_7[name]))
        assert best == "cdqs"
