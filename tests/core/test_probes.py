"""Individual probe behaviour, spot-checked per scheme."""

import functools

import pytest

from repro.core.probes import (
    probe_compactness,
    probe_division,
    probe_level,
    probe_orthogonality,
    probe_overflow,
    probe_persistence,
    probe_recursion,
    probe_xpath,
)
from repro.core.properties import Compliance
from repro.schemes.registry import make_scheme


def factory(name):
    return functools.partial(make_scheme, name)


class TestPersistenceProbe:
    @pytest.mark.parametrize("name,expected", [
        ("qed", Compliance.FULL),
        ("vector", Compliance.FULL),
        ("ordpath", Compliance.FULL),
        ("prepost", Compliance.NONE),
        ("qrs", Compliance.NONE),      # float precision exhaustion
        ("xrel", Compliance.NONE),     # gap exhaustion
        ("lsdx", Compliance.NONE),     # reassignment on deletion
        ("dewey", Compliance.NONE),    # follow-sibling shifting
    ])
    def test_grades(self, name, expected):
        result = probe_persistence(factory(name))
        assert result.compliance is expected, result.evidence

    def test_evidence_names_scenarios(self):
        result = probe_persistence(factory("qed"))
        assert set(result.evidence) == {
            "skewed_60", "random_30", "prepend_30", "churn_40",
        }

    def test_lsdx_fails_specifically_on_churn(self):
        # LSDX insertions do not relabel; only deletion reassignment does.
        result = probe_persistence(factory("lsdx"))
        assert result.evidence["skewed_60"] == 0
        assert result.evidence["churn_40"] > 0


class TestXPathAndLevelProbes:
    @pytest.mark.parametrize("name,expected", [
        ("dewey", Compliance.FULL),
        ("qed", Compliance.FULL),
        ("prepost", Compliance.PARTIAL),
        ("vector", Compliance.PARTIAL),
        ("qrs", Compliance.PARTIAL),
    ])
    def test_xpath_grades(self, name, expected):
        assert probe_xpath(factory(name)).compliance is expected

    @pytest.mark.parametrize("name,expected", [
        ("prepost", Compliance.FULL),
        ("qed", Compliance.FULL),
        ("vector", Compliance.NONE),
        ("sector", Compliance.NONE),
    ])
    def test_level_grades(self, name, expected):
        assert probe_level(factory(name)).compliance is expected


class TestOverflowProbe:
    @pytest.mark.parametrize("name,expected", [
        ("qed", Compliance.FULL),
        ("cdqs", Compliance.FULL),
        ("vector", Compliance.FULL),
        ("improved-binary", Compliance.NONE),
        ("ordpath", Compliance.NONE),
        ("dln", Compliance.NONE),
        ("cdbs", Compliance.NONE),   # compact but fixed length field
        ("prepost", Compliance.NONE),
    ])
    def test_grades(self, name, expected):
        result = probe_overflow(name)
        assert result.compliance is expected, result.evidence

    def test_overflow_evidence_reports_events(self):
        result = probe_overflow("improved-binary")
        assert result.evidence["total_overflow_events"] >= 1


class TestOrthogonalityProbe:
    @pytest.mark.parametrize("name,expected", [
        ("qed", Compliance.FULL),
        ("cdqs", Compliance.FULL),
        ("vector", Compliance.FULL),
        ("dewey", Compliance.NONE),
        ("prepost", Compliance.NONE),
        ("improved-binary", Compliance.NONE),
    ])
    def test_grades(self, name, expected):
        result = probe_orthogonality(make_scheme(name))
        assert result.compliance is expected, result.evidence

    def test_full_grade_requires_both_families(self):
        result = probe_orthogonality(make_scheme("qed"))
        assert result.evidence["prefix"] is True
        assert result.evidence["containment"] is True


class TestDivisionAndRecursionProbes:
    @pytest.mark.parametrize("name,expected", [
        ("ordpath", Compliance.NONE),
        ("improved-binary", Compliance.NONE),
        ("qed", Compliance.NONE),
        ("cdqs", Compliance.NONE),
        ("vector", Compliance.FULL),
        ("dewey", Compliance.FULL),
        ("qrs", Compliance.FULL),     # midpoints by multiplication
        ("sector", Compliance.FULL),  # power table by multiplication
    ])
    def test_division_grades(self, name, expected):
        assert probe_division(factory(name)).compliance is expected

    @pytest.mark.parametrize("name,expected", [
        ("sector", Compliance.NONE),
        ("improved-binary", Compliance.NONE),
        ("qed", Compliance.NONE),
        ("cdqs", Compliance.NONE),
        ("vector", Compliance.NONE),
        ("prepost", Compliance.FULL),
        ("dewey", Compliance.FULL),
        ("ordpath", Compliance.FULL),
        ("lsdx", Compliance.FULL),
    ])
    def test_recursion_grades(self, name, expected):
        assert probe_recursion(factory(name)).compliance is expected


class TestCompactnessProbe:
    def test_reports_declared_grade_with_measurements(self):
        scheme = make_scheme("cdqs")
        result = probe_compactness(
            factory("cdqs"), scheme.metadata.declared_compactness
        )
        assert result.compliance is Compliance.FULL
        assert result.evidence["consistent_with_declared"] is True
        assert result.evidence["bulk_bits_per_label"] > 0

    def test_vector_measurements_consistent(self):
        result = probe_compactness(factory("vector"), Compliance.FULL)
        assert result.evidence["consistent_with_declared"] is True
        # The frontier stays tiny — the section 5 growth claim.
        assert result.evidence["skewed_frontier_bits_after_240"] <= 96

    def test_qed_frontier_grows_linearly(self):
        result = probe_compactness(factory("qed"), Compliance.NONE)
        assert result.evidence["skewed_frontier_bits_after_240"] >= 200
