"""The headline reproduction: the regenerated matrix equals Figure 7."""

import pytest

from repro.core.matrix import EvaluationFramework, EvaluationMatrix
from repro.core.properties import PAPER_FIGURE_7, Compliance, Property
from repro.core.report import (
    most_generic_scheme,
    property_glossary,
    reproduction_report,
    row_report,
)


@pytest.fixture(scope="module")
def matrix():
    """The full Figure 7 regeneration (shared: it takes a few seconds)."""
    return EvaluationMatrix.generate()


class TestFigure7Reproduction:
    def test_matrix_matches_paper_cell_for_cell(self, matrix):
        differences = matrix.diff_against_paper()
        assert differences == []
        assert matrix.matches_paper()

    def test_every_paper_row_present_in_order(self, matrix):
        assert [row.name for row in matrix.rows] == list(PAPER_FIGURE_7)

    def test_row_cells_shape(self, matrix):
        for row in matrix.rows:
            cells = row.cells()
            assert len(cells) == 10
            assert cells[0] in ("Global", "Local", "Hybrid")
            assert cells[1] in ("Fixed", "Variable")

    def test_row_coincidences_match_the_paper(self, matrix):
        # Section 5.2 claims no two schemes share the same properties;
        # the published Figure 7 in fact contains two identical pairs
        # (XPath Accelerator/XRel and DeweyID/LSDX), and since our matrix
        # matches the paper cell-for-cell it reproduces the same pairs.
        rendered = [tuple(row.cells()) for row in matrix.rows]
        assert rendered.count(tuple(matrix.row("prepost").cells())) == 2
        assert rendered.count(tuple(matrix.row("dewey").cells())) == 2
        assert len(set(rendered)) == len(rendered) - 2

    def test_most_generic_scheme_is_cdqs(self, matrix):
        # "the CDQS labelling scheme satisfies the greater number of
        # properties and thus, may be considered ... the most generic"
        assert most_generic_scheme(matrix) == "cdqs"

    def test_evidence_attached_to_every_grade(self, matrix):
        for row in matrix.rows:
            for prop in Property:
                assert prop in row.grades
                assert prop in row.evidence


class TestRendering:
    def test_render_contains_display_names(self, matrix):
        rendered = matrix.render()
        assert "XPath Accelerator [9]" in rendered
        assert "CDQS [16]" in rendered
        assert "Vector [27]" in rendered

    def test_reproduction_report_announces_agreement(self, matrix):
        report = reproduction_report(matrix)
        assert "agree with the published Figure 7" in report

    def test_row_report_lists_evidence(self, matrix):
        report = row_report(matrix.row("qed"))
        assert "QED" in report
        assert "Overflow" in report

    def test_property_glossary(self):
        glossary = property_glossary()
        assert "Persistent Labels" in glossary
        assert "overflow" in glossary.lower()


class TestSelection:
    def test_generate_subset(self):
        subset = EvaluationMatrix.generate(names=["qed", "vector"])
        assert [row.name for row in subset.rows] == ["qed", "vector"]
        assert subset.matches_paper()  # both rows agree with the paper

    def test_row_lookup(self, matrix):
        assert matrix.row("dewey").display_name.startswith("DeweyID")
        with pytest.raises(KeyError):
            matrix.row("nonexistent")

    def test_single_row_via_framework(self):
        row = EvaluationFramework().evaluate("vector")
        expected = PAPER_FIGURE_7["vector"]
        assert tuple(row.cells()) == expected

    def test_extension_rows_have_no_paper_diff(self):
        extended = EvaluationMatrix.generate(
            names=["dde"],
        )
        # Extension schemes carry no Figure 7 row: no diffs possible.
        assert extended.diff_against_paper() == []
        assert extended.rows[0].extension
