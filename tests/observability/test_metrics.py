"""Metrics registry: counters, timers, histograms, scoped deltas."""

import pytest

from repro.observability.metrics import (
    Counter,
    Histogram,
    MetricsRegistry,
    Timer,
    get_registry,
    render_metrics,
)


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestCounter:
    def test_increment_and_reset(self, registry):
        counter = registry.counter("a.b")
        counter.increment()
        counter.increment(5)
        counter.inc()
        assert counter.value == 7
        counter.reset()
        assert counter.value == 0

    def test_same_name_same_object(self, registry):
        assert registry.counter("x") is registry.counter("x")

    def test_distinct_names_distinct_objects(self, registry):
        assert registry.counter("x") is not registry.counter("y")


class TestTimer:
    def test_time_context_accumulates(self, registry):
        timer = registry.timer("t")
        with timer.time():
            pass
        with timer.time():
            pass
        assert timer.count == 2
        assert timer.total_seconds >= 0.0
        assert timer.mean_seconds == timer.total_seconds / 2

    def test_record_external_duration(self, registry):
        timer = registry.timer("t")
        timer.record(1.5)
        timer.record(0.5)
        assert timer.total_seconds == 2.0
        assert timer.mean_seconds == 1.0

    def test_mean_of_unused_timer(self):
        assert Timer("t").mean_seconds == 0.0


class TestHistogram:
    def test_observations(self, registry):
        histogram = registry.histogram("h")
        for value in (1, 2, 4, 100):
            histogram.observe(value)
        assert histogram.count == 4
        assert histogram.minimum == 1
        assert histogram.maximum == 100
        assert histogram.mean == pytest.approx(26.75)

    def test_open_ended_bucket(self):
        histogram = Histogram("h")
        histogram.observe(10 ** 9)
        assert histogram.buckets[-1] == 1

    def test_reset(self, registry):
        histogram = registry.histogram("h")
        histogram.observe(3)
        histogram.reset()
        assert histogram.count == 0
        assert histogram.minimum is None

    def test_quantiles_from_buckets(self, registry):
        histogram = registry.histogram("h")
        for value in range(1, 101):  # 1..100, power-of-two buckets
            histogram.observe(value)
        # bucket upper bounds are coarse; the estimate must bracket the
        # true quantile and stay clamped to the observed range
        assert histogram.quantile(0.0) == 1
        assert 50 <= histogram.p50 <= 64
        assert 95 <= histogram.p95 <= 100
        assert histogram.p99 == 100
        assert histogram.quantile(1.0) == 100

    def test_quantile_of_single_observation(self, registry):
        histogram = registry.histogram("h")
        histogram.observe(7)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert histogram.quantile(q) == 7

    def test_quantile_of_empty_histogram_is_none(self, registry):
        histogram = registry.histogram("h")
        assert histogram.quantile(0.5) is None
        assert histogram.p50 is None
        assert histogram.p95 is None
        assert histogram.p99 is None

    def test_empty_histogram_snapshot_omits_stats(self, registry):
        registry.histogram("h")
        values = registry.snapshot()
        assert values["h.count"] == 0
        assert values["h.sum"] == 0.0
        for stat in ("mean", "min", "max", "p50", "p95", "p99"):
            assert f"h.{stat}" not in values

    def test_histogram_stats_reappear_after_observation(self, registry):
        histogram = registry.histogram("h")
        histogram.observe(0)
        values = registry.snapshot()
        # a real all-zero distribution *does* report its stats
        assert values["h.min"] == 0.0
        assert values["h.p50"] == 0.0

    def test_quantile_rejects_out_of_range(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("h").quantile(1.5)

    def test_snapshot_includes_percentiles(self, registry):
        histogram = registry.histogram("h")
        for value in (1, 2, 4, 100):
            histogram.observe(value)
        values = registry.snapshot()
        assert values["h.min"] == 1
        assert values["h.max"] == 100
        assert values["h.p50"] >= 1
        assert values["h.p95"] <= 100
        assert values["h.p99"] <= 100


class TestRegistry:
    def test_snapshot_flattens_everything(self, registry):
        registry.counter("c").increment(2)
        registry.timer("t").record(1.0)
        registry.histogram("h").observe(4)
        values = registry.snapshot()
        assert values["c"] == 2
        assert values["t.seconds"] == 1.0
        assert values["t.count"] == 1
        assert values["h.count"] == 1
        assert values["h.mean"] == 4

    def test_scoped_yields_deltas_only(self, registry):
        registry.counter("before").increment(10)
        with registry.scoped() as delta:
            registry.counter("inside").increment(3)
        assert delta == {"inside": 3}

    def test_reset_zeroes_all(self, registry):
        registry.counter("c").increment()
        registry.timer("t").record(1.0)
        registry.reset()
        assert registry.snapshot()["c"] == 0
        assert registry.snapshot()["t.seconds"] == 0.0

    def test_len_counts_instruments(self, registry):
        registry.counter("c")
        registry.timer("t")
        registry.histogram("h")
        assert len(registry) == 3

    def test_two_thread_hammer(self, registry):
        """Registration + snapshot from concurrent threads must not race.

        Without the registry lock this reliably dies with ``RuntimeError:
        dictionary changed size during iteration`` — a writer thread
        registering fresh instruments while a reader thread snapshots.
        """
        import threading

        errors = []
        stop = threading.Event()

        def writer():
            try:
                for i in range(2000):
                    registry.counter(f"hammer.c{i}").increment()
                    registry.histogram(f"hammer.h{i}").observe(i)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                stop.set()

        def reader():
            try:
                while not stop.is_set():
                    registry.snapshot()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer),
                   threading.Thread(target=reader)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert not errors
        assert registry.snapshot()["hammer.c1999"] == 1


class TestGlobalRegistry:
    def test_singleton(self):
        assert get_registry() is get_registry()

    def test_update_log_publishes_to_global(self):
        from repro.data.sample import sample_document
        from repro.schemes.registry import make_scheme
        from repro.updates.document import LabeledDocument

        registry = get_registry()
        before = registry.counter("updates.insertions").value
        ldoc = LabeledDocument(sample_document(), make_scheme("qed"))
        ldoc.updates.append_child(ldoc.document.root, "kid")
        assert registry.counter("updates.insertions").value == before + 1

    def test_scheme_instruments_mirror_to_global(self):
        from repro.schemes.registry import make_scheme

        registry = get_registry()
        before = registry.counter("scheme.comparisons").value
        scheme = make_scheme("qed")
        scheme.compare(("2",), ("3",))
        assert registry.counter("scheme.comparisons").value == before + 1


class TestRender:
    def test_render_empty(self):
        assert render_metrics(MetricsRegistry()) == "(no metrics recorded)"

    def test_render_and_prefix_filter(self, registry):
        registry.counter("a.one").increment(1)
        registry.counter("b.two").increment(2)
        text = render_metrics(registry)
        assert "a.one" in text and "b.two" in text
        filtered = render_metrics(registry, prefix="a.")
        assert "a.one" in filtered and "b.two" not in filtered

    def test_render_is_sorted_by_name(self, registry):
        registry.counter("zeta").increment()
        registry.counter("alpha").increment()
        registry.timer("mid").record(0.5)
        names = [line.split()[0] for line in render_metrics(registry).splitlines()]
        assert names == sorted(names)


class TestCrossTypeCollision:
    """One name, one instrument type: re-registration must not shadow."""

    def test_counter_then_timer_raises(self, registry):
        from repro.errors import MetricsError

        registry.counter("x")
        with pytest.raises(MetricsError, match="already registered as a counter"):
            registry.timer("x")

    def test_timer_then_histogram_raises(self, registry):
        from repro.errors import MetricsError

        registry.timer("x")
        with pytest.raises(MetricsError, match="already registered as a timer"):
            registry.histogram("x")

    def test_histogram_then_counter_raises(self, registry):
        from repro.errors import MetricsError

        registry.histogram("x")
        with pytest.raises(MetricsError,
                           match="already registered as a histogram"):
            registry.counter("x")

    def test_same_type_reaccess_is_fine(self, registry):
        assert registry.timer("x") is registry.timer("x")

    def test_snapshot_keys_are_sorted(self, registry):
        registry.counter("z").increment()
        registry.counter("a").increment()
        registry.histogram("m").observe(1)
        keys = list(registry.snapshot())
        assert keys == sorted(keys)
