"""StatsCollector: structural counts, estimates, learning, persistence."""

from repro.observability.stats import (
    STATS_SCHEMA_VERSION,
    StatsCollector,
    render_stats,
)
from repro.updates.document import LabeledDocument
from repro.schemes.registry import make_scheme
from repro.xmlmodel.parser import parse

LIBRARY_XML = (
    "<library><shelf><book><title>a</title></book>"
    "<book><title>b</title></book></shelf>"
    "<shelf><book><title>c</title></book></shelf></library>"
)


def library(scheme="qed"):
    return LabeledDocument(parse(LIBRARY_XML), make_scheme(scheme))


class TestCollection:
    def test_structural_counts(self):
        stats = StatsCollector.collect(library())
        assert stats.node_count == 9
        assert stats.element_count == 9
        assert stats.attribute_count == 0
        assert stats.tag_counts == {
            "library": 1, "shelf": 2, "book": 3, "title": 3,
        }
        assert stats.max_depth == 3
        assert stats.depth_histogram == {0: 1, 1: 2, 2: 3, 3: 3}
        assert stats.fanout_max == 2

    def test_attributes_counted_separately(self):
        ldoc = LabeledDocument(parse('<r a="1" b="2"><c/></r>'),
                               make_scheme("qed"))
        stats = StatsCollector.collect(ldoc)
        assert stats.element_count == 2
        assert stats.attribute_count == 2
        assert stats.node_count == 4

    def test_average_depth_equals_mean_subtree_size(self):
        # sum(depth) == sum(descendant counts): each node contributes
        # one descendant relationship per ancestor it has.
        ldoc = library()
        stats = StatsCollector.collect(ldoc)
        labeled_descendants = sum(
            sum(1 for child in node.descendants() if child.kind.is_labeled)
            for node in ldoc.document.labeled_nodes()
        )
        assert abs(stats.average_depth
                   - labeled_descendants / stats.node_count) < 1e-9

    def test_stale_and_refresh(self):
        ldoc = library()
        stats = StatsCollector.collect(ldoc)
        assert not stats.stale(ldoc)
        ldoc.updates.append_child(ldoc.document.root, "annex")
        assert stats.stale(ldoc)
        stats.observe("child", "book", 2, 4)
        stats.refresh(ldoc)
        assert not stats.stale(ldoc)
        assert stats.tag_counts["annex"] == 1
        # Learned selectivities survive a structural refresh.
        assert "child|book" in stats.selectivities


class TestEstimation:
    def test_from_root_descendant_uses_exact_tag_population(self):
        stats = StatsCollector.collect(library())
        assert stats.estimate_step("descendant", "book", 1,
                                   from_root=True) == 3.0
        assert stats.estimate_step("descendant", "*", 1,
                                   from_root=True) == 9.0
        assert stats.estimate_step("descendant", "nothere", 1,
                                   from_root=True) == 0.0

    def test_structural_child_estimate_scales_with_context(self):
        stats = StatsCollector.collect(library())
        one = stats.estimate_step("child", "*", 1)
        three = stats.estimate_step("child", "*", 3)
        assert three == 3 * one > 0

    def test_learned_selectivity_overrides_structure(self):
        stats = StatsCollector.collect(library())
        structural = stats.estimate_step("child", "title", 3)
        stats.observe("child", "title", 3, 3)
        learned = stats.estimate_step("child", "title", 3)
        assert learned == 3.0
        assert learned != structural

    def test_observe_ignores_empty_contexts(self):
        stats = StatsCollector.collect(library())
        stats.observe("child", "title", 0, 5)
        assert stats.selectivities == {}


class TestPersistence:
    def test_payload_round_trip(self):
        stats = StatsCollector.collect(library())
        stats.observe("descendant", "book", 1, 3)
        payload = stats.to_payload()
        assert payload["schema_version"] == STATS_SCHEMA_VERSION
        restored = StatsCollector.from_payload(payload)
        assert restored.tag_counts == stats.tag_counts
        assert restored.depth_histogram == stats.depth_histogram
        assert restored.selectivities == stats.selectivities
        assert restored.estimate_step("descendant", "book", 1) == \
            stats.estimate_step("descendant", "book", 1)

    def test_from_payload_none_safe(self):
        assert StatsCollector.from_payload(None) is None
        assert StatsCollector.from_payload({}) is None

    def test_payload_is_json_clean(self):
        import json

        stats = StatsCollector.collect(library())
        stats.observe("child", "title", 3, 3)
        restored = StatsCollector.from_payload(
            json.loads(json.dumps(stats.to_payload())))
        assert restored.depth_histogram == stats.depth_histogram


class TestRendering:
    def test_render_mentions_counts_and_tags(self):
        stats = StatsCollector.collect(library())
        text = render_stats(stats)
        assert "9 labelled nodes" in text
        assert "book" in text
        assert "depth histogram" in text

    def test_render_lists_learned_selectivities(self):
        stats = StatsCollector.collect(library())
        stats.observe("child", "title", 3, 3)
        assert "child|title" in render_stats(stats)
