"""EXPLAIN plans: strategy routing, analyze actuals, estimate quality."""

import json

import pytest

from repro.axes.accelerator import AxisAccelerator
from repro.axes.xpath import xpath
from repro.observability.explain import (
    EXPLAIN_SCHEMA_VERSION,
    STRATEGIES,
    UpdatePlan,
    explain_batch,
    explain_query,
)
from repro.observability.stats import StatsCollector
from repro.schemes.registry import make_scheme
from repro.updates.document import LabeledDocument
from repro.xmlmodel.parser import parse
from repro.xmlmodel.xmark import xmark_document

LIBRARY_XML = (
    "<library><shelf><book><title>a</title></book>"
    "<book><title>b</title></book></shelf>"
    "<shelf><book><title>c</title></book></shelf></library>"
)


def library(scheme="qed"):
    return LabeledDocument(parse(LIBRARY_XML), make_scheme(scheme))


def xmark(scheme="qed", scale=0.1, seed=1):
    return LabeledDocument(xmark_document(scale=scale, seed=seed),
                           make_scheme(scheme))


class TestStrategyRouting:
    def test_accelerated_axes_report_window_strategy(self):
        ldoc = xmark()
        accelerator = AxisAccelerator(ldoc)
        for path in ("//item", "//item/following::item",
                     "//bidder/preceding::bidder"):
            plan = explain_query(ldoc, path, accelerator=accelerator,
                                 analyze=True)
            strategies = {step.strategy for step in plan.steps}
            assert strategies == {"accelerator-window"}, (path, strategies)

    def test_no_accelerator_reports_scan_with_reason(self):
        ldoc = library()
        plan = explain_query(ldoc, "//book")
        assert [s.strategy for s in plan.steps] == ["scan"]
        assert plan.steps[0].reason == "no accelerator attached"

    def test_detached_stale_index_falls_back_to_scan(self):
        # The acceptance flow: build the index, detach it, mutate the
        # document; an analyze run answers via scan and states why.
        ldoc = xmark()
        accelerator = AxisAccelerator(ldoc)
        assert len(explain_query(ldoc, "//item", accelerator=accelerator,
                                 analyze=True).steps) == 1
        accelerator.detach()
        ldoc.updates.append_child(ldoc.document.root, "annex")
        plan = explain_query(ldoc, "//item", accelerator=accelerator,
                             analyze=True)
        step = plan.steps[0]
        assert step.strategy == "scan"
        assert "StaleIndexError" in step.reason
        # The scan still answers correctly.
        assert plan.result_count == len(xpath(ldoc, "//item"))

    def test_unaccelerated_axis_scans_even_with_index(self):
        ldoc = library()
        accelerator = AxisAccelerator(ldoc)
        plan = explain_query(ldoc, "//book/attribute::missing",
                             accelerator=accelerator, analyze=True)
        by_axis = {step.axis: step for step in plan.steps}
        assert by_axis["descendant"].strategy == "accelerator-window"
        assert by_axis["attribute"].strategy == "scan"
        assert "not accelerated" in by_axis["attribute"].reason

    def test_every_strategy_is_catalogued(self):
        ldoc = library()
        plan = explain_query(ldoc, "//book | //title",
                             accelerator=AxisAccelerator(ldoc))
        for step in plan.steps:
            assert step.strategy in STRATEGIES


class TestAnalyzeActuals:
    #: Acceptance: actual cardinalities must match ``xpath()`` exactly.
    PATHS = ("//item", "//item/name", "/site/regions",
             "//open_auction/bidder", "//item/following::item")

    @pytest.mark.parametrize("path", PATHS)
    def test_actual_result_count_matches_xpath(self, path):
        ldoc = xmark()
        accelerator = AxisAccelerator(ldoc)
        plan = explain_query(ldoc, path, accelerator=accelerator,
                             analyze=True)
        assert plan.result_count == len(xpath(ldoc, path))
        final = plan.steps[-1]
        assert final.actual_rows == plan.result_count
        assert final.elapsed_ms is not None
        assert plan.total_ms is not None

    def test_union_actuals_sum_to_result(self):
        ldoc = library()
        plan = explain_query(ldoc, "//book | //title", analyze=True)
        assert plan.branches == 2
        finals = {}
        for step in plan.steps:
            finals[step.branch] = step
        assert sum(s.actual_rows for s in finals.values()) >= \
            plan.result_count == len(xpath(ldoc, "//book | //title"))

    def test_plain_mode_does_not_execute(self):
        ldoc = library()
        plan = explain_query(ldoc, "//book")
        assert plan.result_count is None
        assert all(step.actual_rows is None for step in plan.steps)


class TestEstimateQuality:
    #: Satellite: estimated-vs-actual bounded error on XMark across
    #: three schemes.  One analyze run teaches the collector; the next
    #: plan's estimates must then land within 25% of the truth.
    SCHEMES = ("qed", "dewey", "prepost")
    PATHS = ("//item", "//item/name", "//open_auction/bidder")

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_learned_estimates_bounded_error(self, scheme):
        ldoc = xmark(scheme)
        accelerator = AxisAccelerator(ldoc)
        stats = StatsCollector.collect(ldoc)
        for path in self.PATHS:
            explain_query(ldoc, path, accelerator=accelerator,
                          stats=stats, analyze=True)
        for path in self.PATHS:
            plan = explain_query(ldoc, path, accelerator=accelerator,
                                 stats=stats, analyze=True)
            actual = plan.result_count
            assert actual > 0
            error = abs(plan.estimated_result - actual) / actual
            assert error <= 0.25, (path, plan.estimated_result, actual)

    @pytest.mark.parametrize("scheme", SCHEMES)
    def test_root_descendant_estimate_exact_before_learning(self, scheme):
        # `//tag` from the root is answered by the tag population, so
        # even the un-learned structural estimate is exact.
        ldoc = xmark(scheme)
        plan = explain_query(ldoc, "//item")
        assert plan.estimated_result == len(xpath(ldoc, "//item"))


class TestPlanPayload:
    def test_json_payload_shape(self):
        ldoc = library()
        plan = explain_query(ldoc, "//book/title", analyze=True)
        payload = json.loads(json.dumps(plan.to_payload()))
        assert payload["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert payload["path"] == "//book/title"
        assert payload["analyze"] is True
        assert payload["result_count"] == 3
        assert len(payload["steps"]) == 2
        for step in payload["steps"]:
            assert set(step) == {
                "index", "branch", "axis", "name_test", "predicates",
                "strategy", "reason", "estimated_rows", "context_size",
                "actual_rows", "axis_rows", "elapsed_ms",
            }

    def test_render_contains_strategies_and_summary(self):
        ldoc = library()
        plan = explain_query(ldoc, "//book",
                             accelerator=AxisAccelerator(ldoc),
                             analyze=True)
        text = plan.render()
        assert "EXPLAIN //book" in text
        assert "accelerator-window" in text
        assert "=> estimated" in text
        assert "actual 3" in text

    def test_strategy_counters_tick(self):
        from repro.observability.metrics import get_registry

        registry = get_registry()
        before_scan = registry.counter("explain.steps_scan").value
        before_acc = registry.counter("explain.steps_accelerated").value
        ldoc = library()
        explain_query(ldoc, "//book")  # no accelerator -> scan
        explain_query(ldoc, "//book",
                      accelerator=AxisAccelerator(ldoc))
        assert registry.counter("explain.steps_scan").value > before_scan
        assert registry.counter("explain.steps_accelerated").value > \
            before_acc


class TestUpdateExplain:
    def test_fast_path_batch_predicts_zero_extent(self):
        ldoc = library("qed")  # persistent scheme: labels never move
        with ldoc.batch() as batch:
            for index in range(4):
                batch.append_child(ldoc.document.root, f"kid{index}")
            plan = explain_batch(batch)
        assert isinstance(plan, UpdatePlan)
        assert plan.operations == 4
        assert plan.fast_path_labels == 4
        assert plan.predicted_relabel_passes == 0
        assert plan.predicted_relabel_extent == 0
        plan.finish(ldoc.last_batch_result)
        assert plan.actual_relabeled_nodes == 0

    def test_deferred_batch_predicts_full_relabel_bound(self):
        ldoc = library("prepost")  # containment: inserts defer
        with ldoc.batch() as batch:
            batch.append_child(ldoc.document.root, "annex")
            plan = explain_batch(batch)
            assert plan.deferred_labels > 0
            assert plan.predicted_relabel_passes == 1
            assert plan.predicted_relabel_extent == len(ldoc.labels)
        plan.finish(ldoc.last_batch_result)
        assert plan.actual_relabeled_nodes <= \
            plan.predicted_relabel_extent + 1
        payload = plan.to_payload()
        assert payload["schema_version"] == EXPLAIN_SCHEMA_VERSION
        assert "predicted extent" in plan.render()
