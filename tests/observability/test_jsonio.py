"""The shared JSON emitter, and the CLI surfaces that ride on it.

``metrics --json``, ``bench report --json`` and ``lint --json`` all
serialise through :mod:`repro.observability.jsonio`; these tests pin the
dialect (sorted keys, two-space indent, no NaN, trailing newline) and
that the two telemetry commands emit valid JSON even on empty state —
an empty metric selection and a bench run with zero sections.
"""

from __future__ import annotations

import io
import json

import pytest

from repro.cli import main
from repro.observability.benchtel import BenchRun, write_run
from repro.observability.jsonio import dump_json, emit_json


class TestDumpJson:
    def test_round_trips(self):
        payload = {"b": [1, 2.5], "a": {"nested": None}, "c": "text"}
        assert json.loads(dump_json(payload)) == payload

    def test_keys_are_sorted(self):
        text = dump_json({"zeta": 1, "alpha": 2})
        assert text.index('"alpha"') < text.index('"zeta"')

    def test_nan_is_rejected_not_emitted(self):
        with pytest.raises(ValueError):
            dump_json({"value": float("nan")})

    def test_empty_object(self):
        assert dump_json({}) == "{}"


class TestEmitJson:
    def test_writes_to_stream_with_trailing_newline(self):
        stream = io.StringIO()
        emit_json({"a": 1}, stream)
        text = stream.getvalue()
        assert text.endswith("\n")
        assert json.loads(text) == {"a": 1}

    def test_default_stream_is_stdout(self, capsys):
        emit_json({})
        assert capsys.readouterr().out == "{}\n"


class TestMetricsJson:
    def test_valid_json_with_measurements(self, capsys):
        assert main(["metrics", "--ops", "5", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload
        assert all(isinstance(v, (int, float)) for v in payload.values())

    def test_empty_selection_is_still_valid_json(self, capsys):
        assert main(["metrics", "--ops", "5", "--json",
                     "--prefix", "no.such.prefix"]) == 0
        assert json.loads(capsys.readouterr().out) == {}


class TestBenchReportJson:
    def _empty_run_path(self, tmp_path):
        run = BenchRun(label="empty", quick=True)
        run.created = "2026-01-01T00:00:00+00:00"
        return write_run(run, str(tmp_path / "BENCH_empty.json"))

    def test_empty_run_is_valid_json(self, tmp_path, capsys):
        path = self._empty_run_path(tmp_path)
        assert main(["bench", "report", "--bench", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["bench"]["totals"] == {
            "sections": 0, "ok": 0, "failed": 0, "wall_median_s": 0.0,
        }
        assert payload["trace_hotspots"] == []

    def test_empty_run_renders_without_crashing(self, tmp_path, capsys):
        path = self._empty_run_path(tmp_path)
        assert main(["bench", "report", "--bench", path]) == 0
        assert "sections: 0/0 ok" in capsys.readouterr().out
