"""The sampling flight recorder: collection, bounds, collapsed output."""

import time

from repro.observability.metrics import MetricsRegistry
from repro.observability.profiler import (
    OVERFLOW_KEY,
    SamplingProfiler,
    load_collapsed,
    merge_collapsed,
    render_top,
    top_functions,
    write_collapsed,
)


def spin(seconds):
    """Busy-loop so the sampler has a stack to catch."""
    deadline = time.perf_counter() + seconds
    total = 0
    while time.perf_counter() < deadline:
        total += sum(range(50))
    return total


class TestSampling:
    def test_samples_collected_from_busy_workload(self):
        registry = MetricsRegistry()
        with SamplingProfiler(hertz=400, registry=registry) as profiler:
            spin(0.15)
        assert profiler.samples > 0
        counts = profiler.collapsed()
        assert counts
        assert any("test_profiler:spin" in stack for stack in counts)
        assert registry.counter("profiler.samples").value == \
            profiler.samples

    def test_never_empty_even_for_instant_workloads(self):
        profiler = SamplingProfiler(hertz=1, registry=MetricsRegistry())
        profiler.start()
        profiler.stop()  # well inside one 1 Hz period
        assert profiler.samples >= 1
        assert profiler.collapsed()

    def test_stop_is_safe_to_call_twice(self):
        profiler = SamplingProfiler(hertz=50, registry=MetricsRegistry())
        profiler.start()
        profiler.stop()
        samples = profiler.samples
        profiler.stop()
        assert profiler.samples == samples

    def test_bounded_retention_folds_into_overflow(self):
        profiler = SamplingProfiler(hertz=50, max_stacks=1,
                                    registry=MetricsRegistry())
        # Drive _sample directly with distinct synthetic stacks.
        import sys

        frame = sys._getframe()
        profiler._sample(frame)

        def other_stack():
            profiler._sample(sys._getframe())

        other_stack()
        counts = profiler.collapsed()
        assert OVERFLOW_KEY in counts
        assert profiler.dropped == 1

    def test_max_frames_truncates_deep_stacks(self):
        profiler = SamplingProfiler(hertz=50, max_frames=3,
                                    registry=MetricsRegistry())

        def deep(levels):
            if levels:
                return deep(levels - 1)
            import sys

            profiler._sample(sys._getframe())
            return None

        deep(10)
        (stack,) = profiler.collapsed()
        assert stack.count(";") == 2  # 3 frames


class TestCollapsedIO:
    def test_write_and_load_round_trip(self, tmp_path):
        counts = {"a;b;c": 5, "a;d": 2}
        path = tmp_path / "out.collapsed"
        assert write_collapsed(counts, str(path)) == 2
        assert load_collapsed(str(path)) == counts

    def test_load_tolerates_junk_lines(self, tmp_path):
        path = tmp_path / "junk.collapsed"
        path.write_text("a;b 3\n\nnot-a-count x\n 7\na;b 1\n")
        assert load_collapsed(str(path)) == {"a;b": 4}

    def test_merge_sums_across_sources(self):
        merged = merge_collapsed([{"a;b": 1, "c": 2}, {"a;b": 3}])
        assert merged == {"a;b": 4, "c": 2}


class TestTopFunctions:
    def test_self_counts_leaf_total_counts_anywhere(self):
        counts = {"outer;inner": 6, "outer": 3, "outer;inner;leaf": 1}
        rows = {row["function"]: row for row in top_functions(counts)}
        assert rows["inner"]["self"] == 6
        assert rows["inner"]["total"] == 7
        assert rows["outer"]["self"] == 3
        assert rows["outer"]["total"] == 10

    def test_recursion_counted_once_per_stack(self):
        rows = top_functions({"f;f;f": 4})
        assert rows == [{"function": "f", "self": 4, "total": 4}]

    def test_render_top_table(self):
        text = render_top({"outer;inner": 9, "outer": 1}, limit=5)
        assert "self%" in text
        assert "inner" in text
        assert "90.0%" in text

    def test_render_top_empty(self):
        assert render_top({}) == "no samples recorded"
