"""Hierarchical span tracer: nesting, sampling, exporters, overhead."""

from __future__ import annotations

import json
import time

import pytest

from conftest import all_scheme_names, labeled
from repro.observability.metrics import MetricsRegistry
from repro.observability.tracing import (
    AlwaysOffSampler,
    InMemorySpanExporter,
    JSONLinesSpanExporter,
    RatioSampler,
    Tracer,
    get_tracer,
    load_trace,
    render_span_tree,
    render_summary,
    summarize_trace,
    traced,
    tracing_enabled,
)
from repro.xmlmodel.parser import parse

SAMPLE = "<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>"


@pytest.fixture
def tracer():
    exporter = InMemorySpanExporter()
    t = Tracer(enabled=True, exporters=(exporter,), capture_metrics=False)
    return t, exporter


class TestSpanBasics:
    def test_span_records_name_and_attributes(self, tracer):
        t, exporter = tracer
        with t.span("work", scheme="dewey") as span:
            span.set_attribute("nodes", 3)
        (finished,) = exporter.spans
        assert finished.name == "work"
        assert finished.attributes == {"scheme": "dewey", "nodes": 3}
        assert finished.status == "ok"
        assert finished.end_s >= finished.start_s

    def test_nesting_links_parent_and_children(self, tracer):
        t, exporter = tracer
        with t.span("outer") as outer:
            with t.span("inner") as inner:
                assert t.current_span is inner
                with t.span("leaf"):
                    pass
            assert t.current_span is outer
        assert t.current_span is None
        roots = exporter.roots()
        assert [s.name for s in roots] == ["outer"]
        assert [c.name for c in roots[0].children] == ["inner"]
        assert [c.name for c in roots[0].children[0].children] == ["leaf"]
        assert roots[0].trace_id == roots[0].children[0].trace_id

    def test_children_export_before_parents(self, tracer):
        t, exporter = tracer
        with t.span("outer"):
            with t.span("inner"):
                pass
        assert [s.name for s in exporter.spans] == ["inner", "outer"]

    def test_self_time_excludes_children(self, tracer):
        t, exporter = tracer
        with t.span("outer"):
            with t.span("inner"):
                time.sleep(0.002)
        outer = exporter.roots()[0]
        assert outer.self_s <= outer.duration_s
        assert outer.self_s == pytest.approx(
            outer.duration_s - outer.children[0].duration_s
        )

    def test_exception_unwinds_and_marks_error(self, tracer):
        t, exporter = tracer
        with pytest.raises(ValueError, match="boom"):
            with t.span("outer"):
                with t.span("inner"):
                    raise ValueError("boom")
        assert t.current_span is None
        inner, outer = exporter.spans
        assert inner.status == "error"
        assert inner.error == "ValueError: boom"
        assert outer.status == "error"
        with t.span("after"):
            pass
        assert exporter.spans[-1].name == "after"
        assert exporter.spans[-1].parent is None

    def test_metric_deltas_captured_per_span(self):
        registry = MetricsRegistry()
        exporter = InMemorySpanExporter()
        t = Tracer(enabled=True, exporters=(exporter,),
                   capture_metrics=True, registry=registry)
        registry.counter("ops").increment(5)
        with t.span("work"):
            registry.counter("ops").increment(3)
        (finished,) = exporter.spans
        assert finished.metrics["ops"] == 3


class TestNoopFastPath:
    def test_disabled_span_is_shared_singleton(self):
        t = Tracer(enabled=False)
        assert t.span("a") is t.span("b")

    def test_disabled_span_accepts_full_surface(self):
        t = Tracer(enabled=False)
        with t.span("a", x=1) as span:
            span.set_attribute("y", 2)
        assert t.current_span is None

    def test_disabled_overhead_is_bounded(self):
        """The no-op path must cost microseconds, not milliseconds."""
        t = Tracer(enabled=False)
        calls = 20000
        start = time.perf_counter()
        for _ in range(calls):
            with t.span("hot"):
                pass
        elapsed = time.perf_counter() - start
        # Generous ceiling: 10µs per disabled span (measured ~0.5µs);
        # catches accidental allocation or sampling on the no-op path.
        assert elapsed / calls < 10e-6

    def test_global_tracer_is_disabled_by_default(self):
        assert get_tracer().enabled is False


class TestSampling:
    def test_always_off_drops_everything(self):
        exporter = InMemorySpanExporter()
        t = Tracer(enabled=True, sampler=AlwaysOffSampler(),
                   exporters=(exporter,), capture_metrics=False)
        with t.span("root"):
            with t.span("child"):
                pass
        assert len(exporter) == 0

    def test_dropped_root_suppresses_descendants(self):
        """Head-based: a descendant never re-rolls its own decision."""

        class CountingSampler:
            def __init__(self):
                self.calls = 0

            def sample(self, name):
                self.calls += 1
                return False

        sampler = CountingSampler()
        t = Tracer(enabled=True, sampler=sampler,
                   exporters=(InMemorySpanExporter(),), capture_metrics=False)
        with t.span("root"):
            with t.span("child"):
                with t.span("leaf"):
                    pass
        assert sampler.calls == 1

    def test_ratio_sampler_is_deterministic_under_seed(self):
        # Same seed, same decision sequence; and a 0.5 ratio actually
        # both keeps and drops within 64 draws.
        sampler_a = RatioSampler(0.5, seed=42)
        sampler_b = RatioSampler(0.5, seed=42)
        sequence_a = [sampler_a.sample("s") for _ in range(64)]
        sequence_b = [sampler_b.sample("s") for _ in range(64)]
        assert sequence_a == sequence_b
        assert True in sequence_a and False in sequence_a

    def test_ratio_sampler_traces_match_across_runs(self):
        def run():
            exporter = InMemorySpanExporter()
            t = Tracer(enabled=True, sampler=RatioSampler(0.5, seed=7),
                       exporters=(exporter,), capture_metrics=False)
            for index in range(32):
                with t.span(f"op-{index}"):
                    pass
            return [s.name for s in exporter.spans]

        assert run() == run()

    def test_ratio_bounds(self):
        assert RatioSampler(1.0).sample("s") is True
        assert RatioSampler(0.0).sample("s") is False


class TestExportRoundTrip:
    def test_jsonl_export_then_load(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        exporter = InMemorySpanExporter()
        t = Tracer(enabled=True, exporters=(exporter,), capture_metrics=False)
        with JSONLinesSpanExporter(path) as sink:
            t.add_exporter(sink)
            with t.span("outer", scheme="ordpath"):
                with t.span("inner", nodes=4):
                    pass
            with t.span("solo"):
                pass
        roots = load_trace(path)
        assert [r.name for r in roots] == ["outer", "solo"]
        outer = roots[0]
        assert outer.attributes == {"scheme": "ordpath"}
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.children[0].attributes == {"nodes": 4}
        assert outer.children[0].parent_id == outer.span_id
        assert outer.duration_s >= outer.children[0].duration_s

    def test_jsonl_lines_are_valid_json(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer(enabled=True, capture_metrics=False)
        with JSONLinesSpanExporter(path) as sink:
            t.add_exporter(sink)
            with t.span("a", flag=True):
                pass
        lines = path.read_text(encoding="utf-8").splitlines()
        assert len(lines) == 1
        record = json.loads(lines[0])
        assert record["name"] == "a"
        assert record["attributes"] == {"flag": True}
        assert record["status"] == "ok"

    def test_summarize_and_render_round_tripped_trace(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        t = Tracer(enabled=True, capture_metrics=False)
        with JSONLinesSpanExporter(path) as sink:
            t.add_exporter(sink)
            for _ in range(3):
                with t.span("outer"):
                    with t.span("inner"):
                        pass
        roots = load_trace(path)
        rows = summarize_trace(roots)
        by_name = {row["name"]: row for row in rows}
        assert by_name["outer"]["count"] == 3
        assert by_name["inner"]["count"] == 3
        tree = render_span_tree(roots)
        assert "outer" in tree and "inner" in tree
        table = render_summary(rows, top=1)
        assert len(table.splitlines()) == 2  # header + one row


class TestTracedDecorator:
    def test_decorator_spans_each_call(self, tracer):
        t, exporter = tracer

        @traced("unit.work", kind="test")
        def work(value):
            return value * 2

        # the decorator resolves the *global* tracer; scope it on.
        with tracing_enabled(exporter):
            assert work(21) == 42
        assert exporter.spans[-1].name == "unit.work"
        assert exporter.spans[-1].attributes == {"kind": "test"}

    def test_decorator_defaults_to_qualified_name(self):
        exporter = InMemorySpanExporter()

        @traced()
        def quiet_helper():
            return 1

        with tracing_enabled(exporter):
            quiet_helper()
        assert "quiet_helper" in exporter.spans[-1].name


class TestTracingEnabledScope:
    def test_scope_restores_prior_state(self):
        tracer = get_tracer()
        assert tracer.enabled is False
        with tracing_enabled(InMemorySpanExporter()) as scoped:
            assert scoped is tracer
            assert tracer.enabled is True
        assert tracer.enabled is False
        assert tracer.exporters == []

    def test_scope_restores_on_exception(self):
        tracer = get_tracer()
        with pytest.raises(RuntimeError):
            with tracing_enabled(InMemorySpanExporter()):
                raise RuntimeError
        assert tracer.enabled is False


class TestTracedPathEquivalence:
    """Tracing must observe updates, never change them."""

    @pytest.mark.parametrize("scheme_name", all_scheme_names())
    def test_labels_identical_with_tracing_on_and_off(self, scheme_name):
        def workload():
            ldoc = labeled(parse(SAMPLE), scheme_name)
            shelves = ldoc.document.root.element_children()
            hot = shelves[0].element_children()[0]
            for index in range(12):
                if index % 3 == 0:
                    ldoc.insert_before(hot, f"n{index}")
                elif index % 3 == 1:
                    ldoc.insert_after(hot, f"n{index}")
                else:
                    ldoc.append_child(shelves[1], f"n{index}")
            ldoc.delete(shelves[1].element_children()[0])
            return ldoc.labels_in_document_order()

        untraced = workload()
        with tracing_enabled(InMemorySpanExporter()) as tracer:
            traced_run = workload()
            assert len(tracer.exporters[0]) > 0
        assert traced_run == untraced

    def test_instrumented_spans_carry_scheme_attributes(self):
        exporter = InMemorySpanExporter()
        with tracing_enabled(exporter):
            ldoc = labeled(parse(SAMPLE), "ordpath")
            ldoc.append_child(ldoc.document.root, "annex")
        inserts = [s for s in exporter.spans if s.name == "document.insert"]
        assert inserts
        assert inserts[0].attributes["scheme"] == "ordpath"
        assert "overflow" in inserts[0].attributes
