"""Benchmark telemetry: harness runs, BENCH JSON, regression verdicts."""

import json

import pytest

from repro.errors import BenchSchemaError, BenchTelemetryError
# NB: bench_output_path is imported inside its test — at module scope
# pytest would collect the bench_* name as a benchmark test function.
from repro.observability.benchtel import (
    SCHEMA_VERSION,
    find_latest_run,
    git_label,
    load_run,
    run_sections,
    write_run,
)
from repro.observability.regression import (
    ComparisonReport,
    Thresholds,
    classify_section,
    compare_runs,
    load_baseline,
    render_comparison,
)


def section_payload(name, wall, status="ok", **extra):
    payload = {"name": name, "kind": "figure", "status": status,
               "wall_median_s": wall}
    payload.update(extra)
    return payload


def run_payload(label, sections):
    return {"schema_version": SCHEMA_VERSION, "label": label,
            "sections": sections}


THRESHOLDS = Thresholds()  # regression 25%, improvement 20%, floor 5 ms


class TestClassifySection:
    def test_two_times_slower_is_regressed(self):
        verdict = classify_section(
            "s", section_payload("s", 1.0), section_payload("s", 2.0),
            THRESHOLDS,
        )
        assert verdict.status == "regressed"
        assert verdict.ratio == pytest.approx(2.0)

    def test_within_threshold_is_unchanged(self):
        verdict = classify_section(
            "s", section_payload("s", 1.0), section_payload("s", 1.2),
            THRESHOLDS,
        )
        assert verdict.status == "unchanged"

    def test_speedup_is_improved(self):
        verdict = classify_section(
            "s", section_payload("s", 1.0), section_payload("s", 0.5),
            THRESHOLDS,
        )
        assert verdict.status == "improved"

    def test_both_under_noise_floor_is_unchanged(self):
        # 1 ms -> 4 ms is a 4x "slowdown" but both are under the 5 ms
        # floor: pure timer noise, never a verdict.
        verdict = classify_section(
            "s", section_payload("s", 0.001), section_payload("s", 0.004),
            THRESHOLDS,
        )
        assert verdict.status == "unchanged"
        assert "noise floor" in verdict.note

    def test_no_baseline_entry_is_new(self):
        verdict = classify_section(
            "s", None, section_payload("s", 1.0), THRESHOLDS
        )
        assert verdict.status == "new"

    def test_absent_from_current_run_is_missing(self):
        verdict = classify_section(
            "s", section_payload("s", 1.0), None, THRESHOLDS
        )
        assert verdict.status == "missing"

    def test_failed_section_is_failed(self):
        verdict = classify_section(
            "s", section_payload("s", 1.0),
            section_payload("s", None, status="failed",
                            error={"type": "ValueError", "message": "boom"}),
            THRESHOLDS,
        )
        assert verdict.status == "failed"
        assert "ValueError" in verdict.note

    def test_custom_thresholds_move_the_line(self):
        tight = Thresholds(regression=0.05)
        verdict = classify_section(
            "s", section_payload("s", 1.0), section_payload("s", 1.2), tight
        )
        assert verdict.status == "regressed"

    def test_thresholds_validate(self):
        with pytest.raises(ValueError):
            Thresholds(regression=-0.1)
        with pytest.raises(ValueError):
            Thresholds(noise_floor_s=-1.0)


class TestCompareRuns:
    def test_hard_regression_sets_exit_code(self):
        report = compare_runs(
            run_payload("now", [section_payload("a", 2.0),
                                section_payload("b", 1.0)]),
            run_payload("base", [section_payload("a", 1.0),
                                 section_payload("b", 1.0)]),
        )
        assert [s.name for s in report.regressions] == ["a"]
        assert report.exit_code() == 1
        assert report.exit_code(soft=True) == 0

    def test_clean_comparison_exits_zero(self):
        report = compare_runs(
            run_payload("now", [section_payload("a", 1.0)]),
            run_payload("base", [section_payload("a", 1.0)]),
        )
        assert report.exit_code() == 0
        assert report.by_status("unchanged")

    def test_schema_mismatch_raises(self):
        stale = run_payload("base", [])
        stale["schema_version"] = SCHEMA_VERSION + 1
        with pytest.raises(BenchSchemaError) as caught:
            compare_runs(run_payload("now", []), stale)
        assert caught.value.expected == SCHEMA_VERSION

    def test_render_lists_hard_regressions(self):
        report = compare_runs(
            run_payload("now", [section_payload("slow", 4.0)]),
            run_payload("base", [section_payload("slow", 1.0)]),
        )
        text = render_comparison(report)
        assert "HARD REGRESSIONS: slow" in text
        assert "regressed" in text

    def test_payload_counts_every_status(self):
        report = compare_runs(
            run_payload("now", [section_payload("a", 2.0)]),
            run_payload("base", [section_payload("a", 1.0),
                                 section_payload("gone", 1.0)]),
        )
        counts = report.to_payload()["counts"]
        assert counts["regressed"] == 1
        assert counts["missing"] == 1


class TestLoadRun:
    def test_round_trip_through_writer_and_loader(self, tmp_path):
        run = run_sections([("figure", "bench_figure1_prepost")],
                           quick=True)
        path = write_run(run, str(tmp_path / "BENCH_test.json"))
        payload = load_run(path)
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["label"] == run.label
        (section,) = payload["sections"]
        assert section["name"] == "bench_figure1_prepost"
        assert section["status"] == "ok"
        assert payload == json.loads(json.dumps(payload))  # JSON-pure

    def test_rejects_non_json(self, tmp_path):
        path = tmp_path / "BENCH_bad.json"
        path.write_text("not json", encoding="utf-8")
        with pytest.raises(BenchTelemetryError):
            load_run(str(path))

    def test_rejects_foreign_documents(self, tmp_path):
        path = tmp_path / "BENCH_alien.json"
        path.write_text('{"hello": 1}', encoding="utf-8")
        with pytest.raises(BenchTelemetryError):
            load_run(str(path))

    def test_rejects_other_schema_versions(self, tmp_path):
        path = tmp_path / "BENCH_future.json"
        path.write_text(json.dumps({"schema_version": 99, "sections": []}),
                        encoding="utf-8")
        with pytest.raises(BenchSchemaError) as caught:
            load_run(str(path))
        assert caught.value.found == 99

    def test_find_latest_run_picks_newest(self, tmp_path):
        old = tmp_path / "BENCH_old.json"
        new = tmp_path / "BENCH_new.json"
        for path in (old, new):
            path.write_text("{}", encoding="utf-8")
        import os

        os.utime(old, (1, 1))
        assert find_latest_run(str(tmp_path)) == str(new)

    def test_find_latest_run_empty_directory_raises(self, tmp_path):
        with pytest.raises(BenchTelemetryError):
            find_latest_run(str(tmp_path))

    def test_load_baseline_missing_hints_remediation(self, tmp_path):
        with pytest.raises(BenchTelemetryError) as caught:
            load_baseline(str(tmp_path / "default.json"))
        assert "bench run" in str(caught.value)


class TestHarness:
    def test_section_result_captures_telemetry(self):
        # figure 4 labels through LabeledDocument, so the traced
        # instrumented pass sees spans and per-scheme histograms
        # (figure 1 calls label_tree directly and legitimately has none)
        run = run_sections([("figure", "bench_figure4_ordpath")],
                           quick=True)
        (section,) = run.sections
        assert section.status == "ok"
        assert section.rows  # bench modules return structured rows
        assert section.wall_seconds and section.wall_median_s >= 0
        assert section.peak_memory_bytes > 0
        assert section.repeats == len(section.wall_seconds)
        assert "ordpath" in section.schemes
        assert "count" in section.schemes["ordpath"]["label_bits"]
        assert any(row["name"] == "document.insert"
                   for row in section.hotspots)
        assert "hit_rate" in section.compare_cache

    def test_failed_section_is_recorded_not_raised(self):
        run = run_sections([("figure", "no_such_bench_module")],
                           quick=True)
        (section,) = run.sections
        assert section.status == "failed"
        assert section.error["type"] == "ModuleNotFoundError"
        assert run.failed == [section]

    def test_kind_filter_restricts_sections(self):
        run = run_sections([("figure", "bench_figure1_prepost"),
                            ("claim", "bench_claim_overflow")],
                           quick=True, kinds={"figure"})
        assert [s.name for s in run.sections] == ["bench_figure1_prepost"]

    def test_label_defaults_to_git_revision(self):
        assert git_label()  # short sha in this repo, "local" elsewhere
        run = run_sections([], quick=True)
        assert run.label == git_label()

    def test_output_path_embeds_label(self, tmp_path):
        from repro.observability.benchtel import bench_output_path

        path = bench_output_path("abc123", str(tmp_path))
        assert path.endswith("BENCH_abc123.json")

    def test_payload_survives_injected_slowdown_comparison(self, tmp_path):
        """End to end: a 2x slowdown in a real payload is detected."""
        run = run_sections([("figure", "bench_figure1_prepost")],
                           quick=True)
        baseline = load_run(write_run(run, str(tmp_path / "BENCH_a.json")))
        slowed = json.loads(json.dumps(baseline))
        for section in slowed["sections"]:
            section["wall_median_s"] = 10.0
        slowed_baseline = json.loads(json.dumps(baseline))
        for section in slowed_baseline["sections"]:
            section["wall_median_s"] = 5.0
        report = compare_runs(slowed, slowed_baseline)
        assert isinstance(report, ComparisonReport)
        assert [s.status for s in report.sections] == ["regressed"]
