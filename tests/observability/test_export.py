"""The continuous exporter: OpenMetrics text, sampler, HTTP endpoint."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.observability.export import (
    OPENMETRICS_CONTENT_TYPE,
    IntervalSampler,
    openmetrics_name,
    render_openmetrics,
    start_metrics_server,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.ops import OpLog


@pytest.fixture
def registry():
    return MetricsRegistry()


class TestOpenMetricsRendering:
    def test_name_mapping(self):
        assert openmetrics_name("updates.insertions") == "updates_insertions"
        assert openmetrics_name("ops.document.insert.ms") == \
            "ops_document_insert_ms"
        assert openmetrics_name("9lives") == "_9lives"

    def test_counter_rendered_with_type_and_total(self, registry):
        registry.counter("updates.insertions").increment(3)
        text = render_openmetrics(registry)
        assert "# TYPE updates_insertions counter" in text
        assert "updates_insertions_total 3" in text

    def test_exposition_terminates_with_eof(self, registry):
        text = render_openmetrics(registry)
        assert text.endswith("# EOF\n")

    def test_timer_rendered_as_summary_seconds(self, registry):
        with registry.timer("store.backend.put").time():
            pass
        text = render_openmetrics(registry)
        assert "# TYPE store_backend_put_seconds summary" in text
        assert "store_backend_put_seconds_count 1" in text
        assert "store_backend_put_seconds_sum" in text

    def test_histogram_quantiles_labelled(self, registry):
        histogram = registry.histogram("scheme.dewey.label_bits")
        for value in (1.0, 2.0, 3.0):
            histogram.observe(value)
        text = render_openmetrics(registry)
        assert ('scheme_dewey_label_bits{quantile="0.5"} 2' in text)
        assert ('scheme_dewey_label_bits{quantile="0.99"} 3' in text)
        assert "scheme_dewey_label_bits_count 3" in text

    def test_empty_histogram_omits_quantiles_keeps_count(self, registry):
        registry.histogram("scheme.dewey.label_bits")
        text = render_openmetrics(registry)
        assert "quantile" not in text
        assert "scheme_dewey_label_bits_count 0" in text

    def test_exposition_is_line_oriented_and_ascii(self, registry):
        registry.counter("updates.insertions").increment()
        text = render_openmetrics(registry)
        for line in text.splitlines():
            assert line.startswith("#") or " " in line
        text.encode("ascii")


class TestIntervalSampler:
    def test_sample_once_shape(self, registry):
        registry.counter("updates.insertions").increment(2)
        sampler = IntervalSampler(registry=registry)
        sample = sampler.sample_once()
        assert set(sample) == {"ts", "elapsed_s", "metrics"}
        assert sample["metrics"]["updates.insertions"] == 2

    def test_jsonl_file_written(self, registry, tmp_path):
        path = tmp_path / "samples.jsonl"
        registry.counter("updates.insertions").increment()
        sampler = IntervalSampler(path=str(path), registry=registry)
        sampler.sample_once()
        registry.counter("updates.insertions").increment()
        sampler.sample_once()
        lines = path.read_text().strip().splitlines()
        assert len(lines) == 2
        first, second = (json.loads(line) for line in lines)
        assert first["metrics"]["updates.insertions"] == 1
        assert second["metrics"]["updates.insertions"] == 2

    def test_background_thread_start_stop(self, registry, tmp_path):
        path = tmp_path / "bg.jsonl"
        with IntervalSampler(path=str(path), interval_s=30.0,
                             registry=registry):
            pass
        # stop() takes a final sample even if the interval never elapsed.
        lines = path.read_text().strip().splitlines()
        assert len(lines) >= 1


class TestHTTPEndpoint:
    def test_metrics_scrape_round_trip(self, registry):
        registry.counter("updates.insertions").increment(7)
        server, thread = start_metrics_server(port=0, registry=registry)
        try:
            url = f"http://127.0.0.1:{server.port}/metrics"
            with urllib.request.urlopen(url, timeout=5) as response:
                body = response.read().decode("utf-8")
                content_type = response.headers["Content-Type"]
            assert content_type == OPENMETRICS_CONTENT_TYPE
            assert "updates_insertions_total 7" in body
            assert body.endswith("# EOF\n")
        finally:
            server.shutdown()
            server.server_close()

    def test_health_endpoint_serves_json_verdict(self, registry):
        oplog = OpLog(registry=registry)
        server, thread = start_metrics_server(port=0, registry=registry,
                                              oplog=oplog)
        try:
            url = f"http://127.0.0.1:{server.port}/health"
            with urllib.request.urlopen(url, timeout=5) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert payload["status"] == "ok"
            assert payload["schema_version"] == 1
        finally:
            server.shutdown()
            server.server_close()

    def test_critical_health_returns_503(self, registry):
        registry.counter("axes.accelerator.relabel_storms").increment(20)
        oplog = OpLog(registry=registry)
        server, thread = start_metrics_server(port=0, registry=registry,
                                              oplog=oplog)
        try:
            url = f"http://127.0.0.1:{server.port}/health"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 503
            payload = json.loads(excinfo.value.read().decode("utf-8"))
            assert payload["status"] == "critical"
        finally:
            server.shutdown()
            server.server_close()

    def test_unknown_path_is_404(self, registry):
        server, thread = start_metrics_server(port=0, registry=registry)
        try:
            url = f"http://127.0.0.1:{server.port}/nope"
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(url, timeout=5)
            assert excinfo.value.code == 404
        finally:
            server.shutdown()
            server.server_close()


class TestIntervalSamplerLifecycle:
    """Regression: stop() must close the file and leave the sampler
    reusable — a stop/start cycle appends instead of clobbering."""

    def test_stop_closes_lazily_opened_file(self, registry, tmp_path):
        path = tmp_path / "oneshot.jsonl"
        sampler = IntervalSampler(path=str(path), registry=registry)
        sampler.sample_once()  # lazy open, no thread
        assert sampler._file is not None
        sampler.stop()
        assert sampler._file is None
        assert len(path.read_text().strip().splitlines()) == 1

    def test_stop_start_cycle_appends_without_clobbering(self, registry,
                                                         tmp_path):
        path = tmp_path / "cycles.jsonl"
        registry.counter("updates.insertions").increment()
        sampler = IntervalSampler(path=str(path), interval_s=30.0,
                                  registry=registry)
        sampler.start()
        sampler.stop()  # final sample -> 1 line
        first_round = len(path.read_text().strip().splitlines())
        assert first_round >= 1
        sampler.start()
        sampler.stop()
        lines = path.read_text().strip().splitlines()
        assert len(lines) >= first_round + 1
        for line in lines:
            assert json.loads(line)["metrics"]["updates.insertions"] == 1

    def test_stop_is_idempotent(self, registry, tmp_path):
        path = tmp_path / "idem.jsonl"
        sampler = IntervalSampler(path=str(path), interval_s=30.0,
                                  registry=registry)
        sampler.start()
        sampler.stop()
        written = len(path.read_text().strip().splitlines())
        sampler.stop()  # no thread, no open file: a no-op
        assert len(path.read_text().strip().splitlines()) == written
        assert sampler._file is None

    def test_elapsed_resets_between_runs(self, registry, tmp_path):
        sampler = IntervalSampler(registry=registry)
        sampler.start()
        sampler.stop()
        assert sampler._started_ts == 0.0
        sample = sampler.sample_once()
        assert sample["elapsed_s"] == 0.0
