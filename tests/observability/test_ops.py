"""The structured op-log: ring bounds, slow-op capture, instrumentation."""

from __future__ import annotations

import threading

import pytest

from repro.durability.faults import InjectedFault, get_injector
from repro.errors import StaleIndexError
from repro.observability.metrics import MetricsRegistry, get_registry
from repro.observability.ops import (
    OpLog,
    configure_oplog,
    get_oplog,
    oplog_enabled,
    render_oplog,
)
from repro.schemes.registry import make_scheme
from repro.updates.document import LabeledDocument
from repro.xmlmodel.parser import parse

SAMPLE = "<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>"


@pytest.fixture
def oplog():
    """A private, enabled op-log over a private registry."""
    return OpLog(enabled=True, registry=MetricsRegistry())


def ldoc(scheme="dewey"):
    return LabeledDocument(parse(SAMPLE), make_scheme(scheme))


class TestRingBounds:
    def test_overflow_evicts_oldest_and_counts(self):
        registry = MetricsRegistry()
        log = OpLog(capacity=5, enabled=True, registry=registry)
        for index in range(8):
            log.record(f"op.k{index}", 0.001)
        events = log.events()
        assert len(events) == 5
        # The oldest three fell off; the newest five remain, in order.
        assert [event.kind for event in events] == [
            "op.k3", "op.k4", "op.k5", "op.k6", "op.k7"
        ]
        snapshot = registry.snapshot()
        assert snapshot["ops.recorded"] == 8
        assert snapshot["ops.evicted"] == 3

    def test_sequence_numbers_survive_eviction(self):
        log = OpLog(capacity=2, enabled=True, registry=MetricsRegistry())
        for _ in range(5):
            log.record("op.x", 0.0)
        assert [event.seq for event in log.events()] == [4, 5]

    def test_capacity_shrink_via_configure_evicts(self):
        with oplog_enabled(capacity=10) as log:
            for _ in range(10):
                log.record("op.x", 0.0)
            configure_oplog(enabled=True, capacity=4)
            assert len(log) == 4

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            OpLog(capacity=0, registry=MetricsRegistry())

    def test_clear_keeps_monotonic_counters(self):
        registry = MetricsRegistry()
        log = OpLog(enabled=True, registry=registry)
        log.record("op.x", 0.0)
        log.clear()
        assert len(log) == 0
        assert registry.snapshot()["ops.recorded"] == 1


class TestSlowOpCapture:
    def test_fast_ok_event_drops_attributes(self, oplog):
        oplog.slow_threshold_s = 0.1
        event = oplog.record("op.x", 0.001,
                             attributes={"detail": "dropped"})
        assert event.slow is False
        assert event.attributes == {}

    def test_slow_event_keeps_attributes_and_flag(self, oplog):
        oplog.slow_threshold_s = 0.05
        event = oplog.record("op.x", 0.051,
                             attributes={"detail": "kept"})
        assert event.slow is True
        assert event.attributes == {"detail": "kept"}

    def test_error_event_keeps_attributes_even_when_fast(self, oplog):
        event = oplog.record("op.x", 0.0, outcome="error",
                             error_type="ValueError",
                             attributes={"detail": "kept"})
        assert event.attributes == {"detail": "kept"}

    def test_slow_counter_increments(self):
        registry = MetricsRegistry()
        log = OpLog(enabled=True, slow_threshold_s=0.01, registry=registry)
        log.record("op.x", 0.02)
        log.record("op.x", 0.001)
        assert registry.snapshot()["ops.slow"] == 1

    def test_op_scope_records_error_outcome_and_reraises(self, oplog):
        with pytest.raises(ValueError):
            with oplog.op("op.x", scheme="dewey"):
                raise ValueError("boom")
        (event,) = oplog.events()
        assert event.outcome == "error"
        assert event.error_type == "ValueError"

    def test_invalid_outcome_rejected(self, oplog):
        with pytest.raises(ValueError):
            oplog.record("op.x", 0.0, outcome="meh")


class TestDisabledCost:
    def test_disabled_log_records_nothing(self):
        log = OpLog(enabled=False, registry=MetricsRegistry())
        assert log.record("op.x", 0.0) is None
        assert len(log) == 0

    def test_disabled_op_returns_shared_noop(self):
        log = OpLog(enabled=False, registry=MetricsRegistry())
        first = log.op("op.x")
        second = log.op("op.y")
        assert first is second
        with first as scope:
            scope.set(nodes=3)
            scope.link(object())

    def test_global_oplog_disabled_by_default(self):
        assert get_oplog().enabled is False

    def test_document_insert_allocates_no_event_when_disabled(self):
        document = ldoc()
        before = len(get_oplog())
        document.updates.append_child(document.document.root, "quiet")
        assert len(get_oplog()) == before


class TestInstrumentedPaths:
    def test_document_updates_emit_typed_events(self):
        with oplog_enabled() as log:
            document = ldoc()
            root = document.document.root
            node = document.updates.append_child(root, "n").node
            document.updates.delete(node)
        kinds = {event.kind for event in log.events()}
        assert "document.insert" in kinds
        assert "document.delete" in kinds
        insert = log.events(kind="document.insert")[0]
        assert insert.scheme == "dewey"
        assert insert.nodes >= 1

    def test_batch_apply_and_transaction_commit_emit_events(self):
        with oplog_enabled() as log:
            document = ldoc()
            root = document.document.root
            with document.batch() as batch:
                batch.append_child(root, "a")
                batch.append_child(root, "b")
            with document.transaction() as txn:
                txn.append_child(root, "c")
        kinds = set(log.kinds())
        assert "batch.apply" in kinds
        assert "transaction.commit" in kinds

    def test_rollback_outcome_recorded_from_faulted_commit(self):
        with oplog_enabled() as log:
            document = ldoc()
            root = document.document.root
            get_injector().arm("transaction.commit")
            with pytest.raises(InjectedFault):
                with document.transaction() as txn:
                    txn.append_child(root, "doomed")
        commits = log.events(kind="transaction.commit")
        rollbacks = log.events(kind="transaction.rollback")
        assert commits and commits[-1].outcome == "error"
        assert commits[-1].error_type == "InjectedFault"
        assert rollbacks and rollbacks[-1].outcome == "rollback"

    def test_accelerator_build_and_stale_refusal_events(self):
        from repro.axes.accelerator import AxisAccelerator

        with oplog_enabled() as log:
            document = ldoc()
            accelerator = AxisAccelerator(document, attach=False)
            document.updates.append_child(document.document.root, "new")
            with pytest.raises(StaleIndexError):
                accelerator.evaluate("descendant", document.document.root)
        builds = log.events(kind="accelerator.build")
        refusals = log.events(kind="accelerator.stale_refusal")
        assert builds and builds[0].nodes == 6
        assert refusals and refusals[0].outcome == "error"
        assert refusals[0].error_type == "StaleIndexError"

    def test_repository_ingest_and_xpath_events(self):
        from repro.store import open_repository

        with oplog_enabled() as log:
            with open_repository("memory://") as repository:
                stored = repository.add("lib", SAMPLE, scheme="dewey")
                matches = stored.xpath("//book")
        assert len(matches) == 3
        ingest = log.events(kind="repository.ingest")
        xpath = log.events(kind="repository.xpath")
        assert ingest and ingest[0].document == "lib"
        assert ingest[0].nodes == 6
        assert xpath and xpath[0].nodes == 3

    def test_per_kind_histogram_published(self):
        with oplog_enabled():
            document = ldoc()
            document.updates.append_child(document.document.root, "n")
        snapshot = get_registry().snapshot()
        assert snapshot["ops.document.insert.ms.count"] >= 1


class TestReadersAndRendering:
    def test_events_filter_and_limit(self, oplog):
        for index in range(6):
            oplog.record("op.a" if index % 2 else "op.b", 0.0)
        assert len(oplog.events(kind="op.a")) == 3
        assert len(oplog.events(limit=2)) == 2

    def test_tail_filters_outcome(self, oplog):
        oplog.record("op.a", 0.0)
        oplog.record("op.b", 0.0, outcome="error", error_type="E")
        tail = oplog.tail(outcome="error")
        assert [event.kind for event in tail] == ["op.b"]

    def test_rates_window(self, oplog):
        oplog.record("op.a", 0.0)
        oplog.record("op.a", 0.0)
        rates = oplog.rates(window_s=10.0)
        assert rates["op.a"] == pytest.approx(0.2)

    def test_to_payload_schema(self, oplog):
        oplog.record("op.a", 0.0)
        payload = oplog.to_payload()
        assert payload["schema_version"] == 1
        assert payload["recorded_total"] == 1
        assert payload["events"][0]["kind"] == "op.a"

    def test_render_oplog_table(self, oplog):
        oplog.record("op.a", 0.002, nodes=3, scheme="dewey")
        text = render_oplog(oplog)
        assert "op.a" in text
        assert "dewey" in text

    def test_render_empty_oplog(self, oplog):
        assert "no operations" in render_oplog(oplog)

    def test_concurrent_recording_is_safe(self, oplog):
        errors = []

        def hammer():
            try:
                for _ in range(500):
                    oplog.record("op.t", 0.0)
            except Exception as error:  # pragma: no cover - failure path
                errors.append(error)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(oplog) <= oplog.capacity


class TestIsoTimestamps:
    def test_iso_ts_formats_utc(self):
        from repro.observability.ops import iso_ts

        assert iso_ts(0) == "1970-01-01T00:00:00Z"
        assert iso_ts(1700000000) == "2023-11-14T22:13:20Z"

    def test_render_oplog_leads_with_utc_column(self, oplog):
        oplog.record("op.a", 0.002, nodes=3)
        text = render_oplog(oplog)
        header, first_row = text.splitlines()[0], text.splitlines()[1]
        assert header.startswith("time (UTC)")
        # Each row leads with an ISO-8601 Z timestamp.
        assert first_row[:20].strip().endswith("Z")
        assert "T" in first_row[:20]

    def test_payload_timestamps_stay_numeric(self, oplog):
        oplog.record("op.a", 0.002)
        event = oplog.to_payload()["events"][0]
        assert isinstance(event["ts"], float)
