"""The health watchdog: probe transitions, aggregation, fault drills."""

from __future__ import annotations

import pytest

from repro.durability.faults import InjectedFault, get_injector
from repro.observability.health import (
    BackendLockProbe,
    CacheHitRateProbe,
    HealthContext,
    HealthProbe,
    JournalTailProbe,
    OpErrorRateProbe,
    RelabelStormProbe,
    RollbackRateProbe,
    StaleIndexProbe,
    default_probes,
    health_from_snapshot,
    render_health,
    run_health,
)
from repro.observability.metrics import MetricsRegistry
from repro.observability.ops import OpLog, oplog_enabled
from repro.schemes.registry import make_scheme
from repro.updates.document import LabeledDocument
from repro.xmlmodel.parser import parse

SAMPLE = "<library><shelf><book/><book/></shelf><shelf><book/></shelf></library>"


def context(**metrics):
    return HealthContext(metrics=metrics)


class TestProbeTransitions:
    def test_journal_tail_ok_warn_critical(self):
        probe = JournalTailProbe(min_appends=10, warn_ratio=64,
                                 critical_ratio=512)
        ok = probe.evaluate(context(**{"durability.journal.appends": 64,
                                       "durability.journal.syncs": 4}))
        warn = probe.evaluate(context(**{"durability.journal.appends": 640,
                                         "durability.journal.syncs": 4}))
        critical = probe.evaluate(
            context(**{"durability.journal.appends": 4096,
                       "durability.journal.syncs": 4}))
        assert [ok.status, warn.status, critical.status] == [
            "ok", "warn", "critical"
        ]

    def test_journal_never_synced_is_critical(self):
        probe = JournalTailProbe(min_appends=10)
        result = probe.evaluate(
            context(**{"durability.journal.appends": 50}))
        assert result.status == "critical"

    def test_rollback_rate_transitions(self):
        probe = RollbackRateProbe(min_attempts=5, warn_rate=0.2,
                                  critical_rate=0.5)
        ok = probe.evaluate(context(**{"durability.commits": 99,
                                       "durability.rollbacks": 1}))
        warn = probe.evaluate(context(**{"durability.commits": 7,
                                         "durability.rollbacks": 3}))
        critical = probe.evaluate(context(**{"durability.commits": 3,
                                             "durability.rollbacks": 7}))
        assert [ok.status, warn.status, critical.status] == [
            "ok", "warn", "critical"
        ]

    def test_rollback_rate_quiet_below_minimum(self):
        probe = RollbackRateProbe(min_attempts=5)
        result = probe.evaluate(context(**{"durability.rollbacks": 2}))
        assert result.status == "ok"

    def test_stale_index_rate_transitions(self):
        probe = StaleIndexProbe(warn_rate=0.02, critical_rate=0.2)
        ok = probe.evaluate(
            context(**{"axes.accelerator.queries": 1000,
                       "axes.accelerator.stale_errors": 0}))
        warn = probe.evaluate(
            context(**{"axes.accelerator.queries": 95,
                       "axes.accelerator.stale_errors": 5}))
        critical = probe.evaluate(
            context(**{"axes.accelerator.queries": 5,
                       "axes.accelerator.stale_errors": 5}))
        assert [ok.status, warn.status, critical.status] == [
            "ok", "warn", "critical"
        ]

    def test_relabel_storm_transitions(self):
        probe = RelabelStormProbe(warn_at=1, critical_at=8)
        ok = probe.evaluate(context())
        warn = probe.evaluate(
            context(**{"axes.accelerator.relabel_storms": 1}))
        critical = probe.evaluate(
            context(**{"axes.accelerator.relabel_storms": 9}))
        assert [ok.status, warn.status, critical.status] == [
            "ok", "warn", "critical"
        ]

    def test_cache_hit_rate_collapse(self):
        probe = CacheHitRateProbe(min_lookups=100, warn_below=0.2,
                                  critical_below=0.05)
        ok = probe.evaluate(context(**{"compare_cache.hits": 900,
                                       "compare_cache.misses": 100}))
        warn = probe.evaluate(context(**{"compare_cache.hits": 10,
                                         "compare_cache.misses": 90}))
        critical = probe.evaluate(context(**{"compare_cache.hits": 1,
                                             "compare_cache.misses": 99}))
        assert [ok.status, warn.status, critical.status] == [
            "ok", "warn", "critical"
        ]

    def test_backend_lock_transitions(self):
        probe = BackendLockProbe(warn_at=1, critical_at=10)
        ok = probe.evaluate(context())
        warn = probe.evaluate(
            context(**{"store.backend.lock_refusals": 1}))
        critical = probe.evaluate(
            context(**{"store.backend.lock_refusals": 10}))
        assert [ok.status, warn.status, critical.status] == [
            "ok", "warn", "critical"
        ]

    def test_op_error_rate_uses_oplog_evidence(self):
        log = OpLog(enabled=True, registry=MetricsRegistry())
        log.record("journal.append", 0.0, outcome="error",
                   error_type="OSError")
        probe = OpErrorRateProbe(min_ops=20, warn_rate=0.02,
                                 critical_rate=0.2)
        result = probe.evaluate(HealthContext(
            metrics={"ops.recorded": 100, "ops.errors": 3}, oplog=log))
        assert result.status == "warn"
        assert "journal.append:OSError" in result.evidence


class TestAggregation:
    def test_worst_status_wins(self):
        report = health_from_snapshot(
            {"axes.accelerator.relabel_storms": 9},
            registry=MetricsRegistry())
        assert report.status == "critical"
        assert report.exit_code == 1

    def test_all_quiet_is_ok_with_exit_zero(self):
        report = health_from_snapshot({}, registry=MetricsRegistry())
        assert report.status == "ok"
        assert report.exit_code == 0
        assert len(report.results) == len(default_probes())

    def test_raising_probe_reported_critical_not_raised(self):
        class BrokenProbe(HealthProbe):
            name = "broken"

            def evaluate(self, ctx):
                raise RuntimeError("watchdog bug")

        registry = MetricsRegistry()
        report = health_from_snapshot({}, probes=[BrokenProbe()],
                                      registry=registry)
        assert report.status == "critical"
        assert "RuntimeError" in report.results[0].evidence
        assert registry.snapshot()["health.probe_failures"] == 1

    def test_payload_schema_versioned(self):
        report = health_from_snapshot({}, registry=MetricsRegistry())
        payload = report.to_payload()
        assert payload["schema_version"] == 1
        assert payload["status"] == "ok"
        assert {probe["probe"] for probe in payload["probes"]} == {
            probe.name for probe in default_probes()
        }

    def test_run_health_counts_evaluations(self):
        registry = MetricsRegistry()
        run_health(registry=registry,
                   oplog=OpLog(registry=registry), probes=[])
        assert registry.snapshot()["health.evaluations"] == 1

    def test_render_health_marks_statuses(self):
        report = health_from_snapshot(
            {"axes.accelerator.relabel_storms": 1},
            registry=MetricsRegistry())
        text = render_health(report)
        assert text.startswith("overall: warn")
        assert "! relabel-storms" in text

    def test_invalid_probe_status_rejected(self):
        probe = RelabelStormProbe()
        with pytest.raises(ValueError):
            probe.result("fine", "nope")


class TestFaultDrill:
    """End-to-end: injected faults must surface as warn/critical."""

    def test_injected_commit_faults_trip_the_watchdog(self):
        registry = MetricsRegistry()
        injector = get_injector()
        with oplog_enabled() as log:
            document = LabeledDocument(parse(SAMPLE), make_scheme("dewey"))
            root = document.document.root
            for index in range(10):
                if index % 2 == 0:
                    injector.arm("transaction.commit")
                try:
                    with document.transaction() as txn:
                        txn.append_child(root, f"n{index}")
                except InjectedFault:
                    root = document.document.root
            # Build the probe context from this run's own ring, so the
            # drill is independent of whatever the global counters
            # accumulated across the rest of the suite.
            events = log.events()
            errors = [event for event in events
                      if event.outcome == "error"]
            report = health_from_snapshot(
                {
                    "durability.commits": 5,
                    "durability.rollbacks": 5,
                    "ops.recorded": len(events),
                    "ops.errors": len(errors),
                },
                oplog=log, registry=registry)
        statuses = {result.probe: result.status
                    for result in report.results}
        assert statuses["rollback-rate"] == "critical"
        assert statuses["op-error-rate"] in ("warn", "critical")
        assert report.exit_code == 1


class TestScanFallbackProbe:
    def probe(self, **kwargs):
        from repro.observability.health import ScanFallbackProbe

        return ScanFallbackProbe(**kwargs)

    def test_too_few_steps_is_ok(self):
        result = self.probe(min_steps=8).evaluate(
            context(**{"explain.steps_scan": 3}))
        assert result.status == "ok"
        assert "too few" in result.evidence

    def test_scan_only_workload_without_index_is_ok(self):
        result = self.probe().evaluate(
            context(**{"explain.steps_scan": 50,
                       "explain.steps_accelerated": 0,
                       "axes.accelerator.builds": 0}))
        assert result.status == "ok"
        assert "scan-only" in result.evidence

    def test_warn_and_critical_rates_with_built_index(self):
        warn = self.probe().evaluate(
            context(**{"explain.steps_scan": 6,
                       "explain.steps_accelerated": 4,
                       "axes.accelerator.builds": 1,
                       "axes.accelerator.stale_errors": 2}))
        critical = self.probe().evaluate(
            context(**{"explain.steps_scan": 99,
                       "explain.steps_accelerated": 1,
                       "axes.accelerator.builds": 1}))
        assert warn.status == "warn"
        assert "stale refusals" in warn.evidence
        assert critical.status == "critical"

    def test_low_scan_share_is_ok(self):
        result = self.probe().evaluate(
            context(**{"explain.steps_scan": 1,
                       "explain.steps_accelerated": 19,
                       "axes.accelerator.builds": 1}))
        assert result.status == "ok"

    def test_registered_in_default_probes(self):
        assert any(probe.name == "scan-fallback-rate"
                   for probe in default_probes())

    def test_fires_from_real_explain_counters(self, monkeypatch):
        # Route the global explain counters into a private registry so
        # the probe sees what explain_query actually records.
        import repro.observability.explain as explain_module
        from repro.axes.accelerator import AxisAccelerator
        from repro.observability.explain import explain_query

        registry = MetricsRegistry()
        monkeypatch.setattr(explain_module, "get_registry",
                            lambda: registry)
        ldoc = LabeledDocument(parse(SAMPLE), make_scheme("qed"))
        accelerator = AxisAccelerator(ldoc)
        explain_query(ldoc, "//book", accelerator=accelerator, analyze=True)
        accelerator.detach()
        ldoc.updates.append_child(ldoc.document.root, "annex")
        for _ in range(9):
            explain_query(ldoc, "//book", accelerator=accelerator,
                          analyze=True)
        snapshot = registry.snapshot()
        snapshot.setdefault("axes.accelerator.builds", 1)
        probe = self.probe()
        result = probe.evaluate(HealthContext(metrics=snapshot))
        assert result.status in ("warn", "critical")
        assert "fell back to the scan path" in result.evidence
