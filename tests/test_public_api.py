"""Public API hygiene: exports exist, are documented, and stay stable."""

import importlib
import inspect

import pytest

PUBLIC_MODULES = [
    "repro",
    "repro.analysis",
    "repro.axes",
    "repro.core",
    "repro.durability",
    "repro.encoding",
    "repro.labels",
    "repro.schemes",
    "repro.store",
    "repro.strategies",
    "repro.ulang",
    "repro.updates",
    "repro.xmlmodel",
]


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_module_has_docstring(module_name):
    module = importlib.import_module(module_name)
    assert module.__doc__ and module.__doc__.strip()


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_all_exports_resolve(module_name):
    module = importlib.import_module(module_name)
    for name in getattr(module, "__all__", []):
        assert getattr(module, name, None) is not None, (
            f"{module_name}.{name} is exported but missing"
        )


@pytest.mark.parametrize("module_name", PUBLIC_MODULES)
def test_public_callables_are_documented(module_name):
    """Every class and function named in __all__ carries a docstring."""
    module = importlib.import_module(module_name)
    undocumented = []
    for name in getattr(module, "__all__", []):
        member = getattr(module, name)
        if inspect.isclass(member) or inspect.isfunction(member):
            if not (member.__doc__ and member.__doc__.strip()):
                undocumented.append(name)
    assert undocumented == []


def test_top_level_quickstart_names():
    import repro

    for name in (
        "parse", "serialize", "make_scheme", "LabeledDocument",
        "XMLRepository", "VersionedDocument", "figure7_schemes",
        "suggest_scheme",
    ):
        assert name in repro.__all__


def test_every_scheme_class_is_documented():
    from repro.schemes.registry import available_schemes, scheme_class

    for name in available_schemes():
        cls = scheme_class(name)
        assert cls.__doc__ and cls.__doc__.strip(), name
        assert cls.metadata.display_name
        assert cls.metadata.reference


def test_scheme_public_methods_documented():
    from repro.schemes.base import LabelingScheme

    for name, member in inspect.getmembers(
        LabelingScheme, predicate=inspect.isfunction
    ):
        if name.startswith("_"):
            continue
        assert member.__doc__ and member.__doc__.strip(), name
