"""Subtree move: detach + re-insert with fresh labels at the target."""

import pytest

from conftest import all_scheme_names, labeled
from repro.data.sample import sample_document
from repro.errors import UpdateError


def find(ldoc, name):
    return next(
        node for node in ldoc.document.labeled_nodes() if node.name == name
    )


@pytest.mark.parametrize("name", all_scheme_names())
class TestMoveAcrossSchemes:
    def test_move_keeps_order_invariant(self, name):
        ldoc = labeled(sample_document(), name)
        editor = find(ldoc, "editor")
        root = ldoc.document.root
        ldoc.move(editor, root, len(root.children))
        ldoc.verify_order()
        assert editor.parent is root

    def test_moved_subtree_keeps_identity_and_content(self, name):
        ldoc = labeled(sample_document(), name)
        editor = find(ldoc, "editor")
        editor_id = editor.node_id
        child_names = [c.name for c in editor.labeled_children()]
        ldoc.move(editor, ldoc.document.root, len(ldoc.document.root.children))
        assert editor.node_id == editor_id
        assert [c.name for c in editor.labeled_children()] == child_names


class TestMoveSemantics:
    def test_persistent_scheme_keeps_outside_labels(self):
        ldoc = labeled(sample_document(), "qed")
        editor = find(ldoc, "editor")
        moved_ids = {n.node_id for n in editor.preorder() if n.kind.is_labeled}
        outside = {
            node_id: label for node_id, label in ldoc.labels.items()
            if node_id not in moved_ids
        }
        ldoc.move(editor, ldoc.document.root, len(ldoc.document.root.children))
        for node_id, label in outside.items():
            assert ldoc.labels[node_id] == label
        assert ldoc.log.relabeled_nodes == 0

    def test_moved_nodes_get_new_labels(self):
        ldoc = labeled(sample_document(), "qed")
        editor = find(ldoc, "editor")
        old_label = ldoc.label_of(editor)
        ldoc.move(editor, ldoc.document.root, len(ldoc.document.root.children))
        assert ldoc.label_of(editor) != old_label
        # The new label sits under the root, after the old last child.
        assert ldoc.scheme.is_parent(
            ldoc.label_of(ldoc.document.root), ldoc.label_of(editor)
        )

    def test_move_to_front(self):
        ldoc = labeled(sample_document(), "cdqs")
        edition = find(ldoc, "edition")
        publisher = find(ldoc, "publisher")
        ldoc.move(edition, ldoc.document.root, 0)
        ldoc.verify_order()
        order = [n.name for n in ldoc.document.labeled_nodes()]
        assert order.index("edition") < order.index("publisher")

    def test_move_root_rejected(self):
        ldoc = labeled(sample_document(), "qed")
        with pytest.raises(UpdateError):
            ldoc.move(ldoc.document.root, ldoc.document.root, 0)

    def test_move_under_own_descendant_rejected(self):
        ldoc = labeled(sample_document(), "qed")
        publisher = find(ldoc, "publisher")
        editor = find(ldoc, "editor")
        with pytest.raises(UpdateError):
            ldoc.move(publisher, editor, 0)

    def test_queries_after_move(self):
        from repro.axes.xpath import xpath

        ldoc = labeled(sample_document(), "qed")
        editor = find(ldoc, "editor")
        ldoc.move(editor, ldoc.document.root, len(ldoc.document.root.children))
        assert [n.name for n in xpath(ldoc, "/book/editor/name")] == ["name"]
        assert xpath(ldoc, "/book/publisher/editor") == []
