"""Workload generators: the section 5.1 update scenarios."""

import pytest

from conftest import labeled
from repro.data.sample import sample_document
from repro.updates.workloads import (
    append_insertions,
    churn,
    prepend_insertions,
    random_insertions,
    skewed_insertions,
    uniform_insertions,
)


class TestSkewed:
    def test_inserts_land_before_fixed_anchor(self):
        ldoc = labeled(sample_document(), "qed")
        anchor = ldoc.document.root.element_children()[-1]
        result = skewed_insertions(ldoc, 10, anchor=anchor)
        assert result.operations == 10
        children = ldoc.document.root.element_children()
        assert children[-1] is anchor
        assert sum(1 for c in children if c.name == "skew") == 10

    def test_result_reports_growth(self):
        ldoc = labeled(sample_document(), "qed")
        result = skewed_insertions(ldoc, 25)
        assert len(result.inserted_label_bits) == 25
        assert result.final_insert_bits >= result.inserted_label_bits[0]
        assert result.total_bits_after > result.total_bits_before

    def test_requires_a_root_child(self):
        from repro.xmlmodel.builder import tree_from_shape

        ldoc = labeled(tree_from_shape([]), "qed")
        with pytest.raises(ValueError):
            skewed_insertions(ldoc, 1)


class TestOneSided:
    def test_prepend_inserts_go_first(self):
        ldoc = labeled(sample_document(), "qed")
        prepend_insertions(ldoc, 5)
        first = ldoc.document.root.element_children()[0]
        assert first.name == "front"

    def test_append_inserts_go_last(self):
        ldoc = labeled(sample_document(), "qed")
        append_insertions(ldoc, 5)
        last = ldoc.document.root.element_children()[-1]
        assert last.name == "back"


class TestRandomAndUniform:
    def test_random_is_deterministic_per_seed(self):
        first = labeled(sample_document(), "qed")
        second = labeled(sample_document(), "qed")
        random_insertions(first, 20, seed=9)
        random_insertions(second, 20, seed=9)
        assert [n.name for n in first.document.labeled_nodes()] == [
            n.name for n in second.document.labeled_nodes()
        ]

    def test_random_keeps_order(self):
        ldoc = labeled(sample_document(), "cdqs")
        random_insertions(ldoc, 30, seed=11)
        ldoc.verify_order()

    def test_uniform_spreads_across_elements(self):
        ldoc = labeled(sample_document(), "qed")
        uniform_insertions(ldoc, 14)
        parents = {
            node.parent.name
            for node in ldoc.document.labeled_nodes()
            if node.name == "uni"
        }
        assert len(parents) >= 5


class TestChurn:
    def test_mixed_inserts_and_deletes(self):
        ldoc = labeled(sample_document(), "qed")
        before = ldoc.document.labeled_size()
        result = churn(ldoc, 40, seed=3, delete_ratio=0.4)
        assert result.operations == 40
        assert ldoc.log.deletions > 0
        assert ldoc.log.insertions > 0
        ldoc.verify_order()

    def test_churn_on_relabeling_scheme(self):
        ldoc = labeled(sample_document(), "dewey")
        churn(ldoc, 30, seed=7)
        ldoc.verify_order()


class TestWorkloadResult:
    def test_bits_per_insert_empty(self):
        ldoc = labeled(sample_document(), "qed")
        result = skewed_insertions(ldoc, 0)
        assert result.bits_per_insert == 0.0
        assert result.final_insert_bits == 0
