"""UpdateResult surface and the legacy deprecation shims."""

import warnings

import pytest

from conftest import labeled
from repro.data.sample import sample_document
from repro.updates.results import (
    UpdateResult,
    UpdateSurface,
    warn_on_legacy_results,
)
from repro.xmlmodel.tree import XMLNode


@pytest.fixture
def ldoc():
    return labeled(sample_document(), "qed")


class TestUpdateSurface:
    def test_property_returns_surface(self, ldoc):
        assert isinstance(ldoc.updates, UpdateSurface)

    def test_insert_returns_result(self, ldoc):
        result = ldoc.updates.append_child(ldoc.document.root, "kid")
        assert isinstance(result, UpdateResult)
        assert result.kind == "insert"
        assert isinstance(result.node, XMLNode)
        assert result.label == ldoc.labels[result.node.node_id]
        assert result.labels_assigned == 1
        assert not result.deferred

    def test_insert_sibling_positions(self, ldoc):
        children = ldoc.document.root.element_children()
        before = ldoc.updates.insert_before(children[0], "first")
        after = ldoc.updates.insert_after(children[-1], "last")
        ordered = ldoc.document.root.element_children()
        assert ordered[0] is before.node
        assert ordered[-1] is after.node

    def test_delete_returns_result(self, ldoc):
        victim = ldoc.document.root.element_children()[0]
        result = ldoc.updates.delete(victim)
        assert result.kind == "delete"
        assert result.node is None

    def test_relabel_cost_reported(self):
        ldoc = labeled(sample_document(), "prepost")
        target = ldoc.document.root.element_children()[0]
        result = ldoc.updates.insert_after(target, "new")
        assert result.relabel_events == 1
        assert result.relabeled_nodes > 0

    def test_content_updates(self, ldoc):
        element = ldoc.document.root.element_children()[0]
        result = ldoc.updates.set_text(element, "hello")
        assert result.kind == "content"
        renamed = ldoc.updates.rename(element, "other")
        assert renamed.kind == "content"
        assert element.name == "other"

    def test_move_returns_result(self, ldoc):
        a, b = ldoc.document.root.element_children()[:2]
        child = a.element_children()[0] if a.element_children() else None
        if child is None:
            pytest.skip("sample tree shape changed")
        result = ldoc.updates.move(child, b, len(b.children))
        assert result.kind == "move"
        assert result.node is child
        assert result.label == ldoc.labels[child.node_id]
        ldoc.verify_order()


class TestLegacyShims:
    def test_legacy_methods_return_nodes(self, ldoc):
        node = ldoc.append_child(ldoc.document.root, "kid")
        assert isinstance(node, XMLNode)

    def test_quiet_by_default(self, ldoc):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            ldoc.append_child(ldoc.document.root, "kid")

    def test_warnings_when_enabled(self, ldoc):
        warn_on_legacy_results(True)
        try:
            with pytest.warns(DeprecationWarning, match="append_child"):
                ldoc.append_child(ldoc.document.root, "kid")
        finally:
            warn_on_legacy_results(False)

    def test_surface_never_warns(self, ldoc):
        warn_on_legacy_results(True)
        try:
            with warnings.catch_warnings():
                warnings.simplefilter("error")
                ldoc.updates.append_child(ldoc.document.root, "kid")
        finally:
            warn_on_legacy_results(False)

    def test_shim_and_surface_share_accounting(self, ldoc):
        ldoc.append_child(ldoc.document.root, "one")
        ldoc.updates.append_child(ldoc.document.root, "two")
        assert ldoc.log.insertions == 2
