"""LabeledDocument: update routing, accounting, integrity."""

import pytest

from conftest import labeled
from repro.data.sample import sample_document
from repro.errors import LabelCollisionError, UpdateError
from repro.schemes.registry import make_scheme
from repro.updates.document import LabeledDocument


@pytest.fixture
def qed_doc():
    return labeled(sample_document(), "qed")


class TestLookups:
    def test_label_of_and_format(self, qed_doc):
        root = qed_doc.document.root
        assert qed_doc.label_of(root) == qed_doc.labels[root.node_id]
        assert isinstance(qed_doc.format_label(root), str)

    def test_node_by_label(self, qed_doc):
        root = qed_doc.document.root
        assert qed_doc.node_by_label(qed_doc.label_of(root)) is root

    def test_node_by_unknown_label(self, qed_doc):
        with pytest.raises(UpdateError):
            qed_doc.node_by_label(("nope",))

    def test_labels_in_document_order(self, qed_doc):
        values = qed_doc.labels_in_document_order()
        assert len(values) == 10


class TestInsertAccounting:
    def test_insertions_counted(self, qed_doc):
        root = qed_doc.document.root
        qed_doc.append_child(root, "one")
        qed_doc.prepend_child(root, "two")
        assert qed_doc.log.insertions == 2

    def test_new_node_is_in_tree_and_labelled(self, qed_doc):
        node = qed_doc.append_child(qed_doc.document.root, "fresh")
        assert node.parent is qed_doc.document.root
        assert node.node_id in qed_doc.labels

    def test_insert_before_relative_position(self, qed_doc):
        children = qed_doc.document.root.element_children()
        node = qed_doc.insert_before(children[1], "wedge")
        updated = qed_doc.document.root.element_children()
        assert updated[1] is node

    def test_root_cannot_get_siblings(self, qed_doc):
        with pytest.raises(UpdateError):
            qed_doc.insert_before(qed_doc.document.root, "impossible")

    def test_attribute_insert_positioning(self, qed_doc):
        title = qed_doc.document.root.element_children()[0]
        attr = qed_doc.insert_attribute(title, "lang", "en")
        assert title.attributes()[-1] is attr
        qed_doc.verify_order()

    def test_relabel_accounting_for_shifting_scheme(self):
        ldoc = labeled(sample_document(), "dewey")
        children = ldoc.document.root.element_children()
        ldoc.insert_before(children[0], "front")
        assert ldoc.log.relabel_events == 1
        assert ldoc.log.relabeled_nodes == 9


class TestSubtreeInsert:
    def test_fragment_from_other_document(self, qed_doc):
        from repro.xmlmodel.parser import parse_fragment

        fragment = parse_fragment("<kit><part n='1'/><part n='2'/></kit>")
        root = qed_doc.document.root
        node = qed_doc.insert_subtree(root, len(root.children), fragment)
        assert node.document is qed_doc.document
        qed_doc.verify_order()
        names = [n.name for n in qed_doc.document.labeled_nodes()]
        assert names.count("part") == 2

    def test_subtree_preserves_text(self, qed_doc):
        from repro.xmlmodel.parser import parse_fragment

        fragment = parse_fragment("<note>remember</note>")
        root = qed_doc.document.root
        node = qed_doc.insert_subtree(root, len(root.children), fragment)
        assert node.text_value() == "remember"


class TestDeletion:
    def test_delete_removes_labels_and_index(self, qed_doc):
        children = qed_doc.document.root.element_children()
        label = qed_doc.label_of(children[0])
        qed_doc.delete(children[0])
        with pytest.raises(UpdateError):
            qed_doc.node_by_label(label)

    def test_delete_root_rejected(self, qed_doc):
        with pytest.raises(UpdateError):
            qed_doc.delete(qed_doc.document.root)


class TestContentUpdates:
    def test_set_text_replaces(self, qed_doc):
        title = qed_doc.document.root.element_children()[0]
        qed_doc.set_text(title, "New Title")
        assert title.text_value() == "New Title"
        assert qed_doc.log.content_updates == 1

    def test_set_text_does_not_touch_labels(self, qed_doc):
        title = qed_doc.document.root.element_children()[0]
        before = dict(qed_doc.labels)
        qed_doc.set_text(title, "New Title")
        assert qed_doc.labels == before

    def test_set_attribute_value(self, qed_doc):
        title = qed_doc.document.root.element_children()[0]
        genre = title.attribute("genre")
        qed_doc.set_attribute_value(genre, "SciFi")
        assert genre.value == "SciFi"

    def test_rename(self, qed_doc):
        title = qed_doc.document.root.element_children()[0]
        qed_doc.rename(title, "heading")
        assert title.name == "heading"

    def test_content_ops_validate_targets(self, qed_doc):
        title = qed_doc.document.root.element_children()[0]
        genre = title.attribute("genre")
        with pytest.raises(UpdateError):
            qed_doc.set_text(genre, "x")
        with pytest.raises(UpdateError):
            qed_doc.set_attribute_value(title, "x")


class TestCollisionsAndIntegrity:
    def test_on_collision_validation(self):
        with pytest.raises(UpdateError):
            LabeledDocument(sample_document(), make_scheme("qed"),
                            on_collision="explode")

    def test_verify_order_detects_corruption(self, qed_doc):
        nodes = list(qed_doc.document.labeled_nodes())
        # Swap two labels behind the document's back.
        a, b = nodes[1].node_id, nodes[2].node_id
        qed_doc.labels[a], qed_doc.labels[b] = (
            qed_doc.labels[b], qed_doc.labels[a],
        )
        with pytest.raises(UpdateError):
            qed_doc.verify_order()

    def test_verify_order_detects_duplicates(self, qed_doc):
        nodes = list(qed_doc.document.labeled_nodes())
        qed_doc.labels[nodes[2].node_id] = qed_doc.labels[nodes[1].node_id]
        with pytest.raises(LabelCollisionError):
            qed_doc.verify_order()

    def test_storage_totals(self, qed_doc):
        assert qed_doc.total_label_bits() > 0
        assert qed_doc.max_label_bits() <= qed_doc.total_label_bits()
