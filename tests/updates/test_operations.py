"""Declarative update operations and program replay."""

from conftest import labeled
from repro.data.sample import sample_document
from repro.updates.operations import (
    Operation,
    OpKind,
    apply_operation,
    apply_program,
)


class TestSingleOperations:
    def test_append_child(self):
        ldoc = labeled(sample_document(), "qed")
        apply_operation(ldoc, Operation(OpKind.APPEND_CHILD, 0, name="tail"))
        assert any(
            n.name == "tail" for n in ldoc.document.labeled_nodes()
        )

    def test_target_wraps_modulo(self):
        ldoc = labeled(sample_document(), "qed")
        big_target = Operation(OpKind.APPEND_CHILD, 1000, name="wrapped")
        apply_operation(ldoc, big_target)
        assert any(
            n.name == "wrapped" for n in ldoc.document.labeled_nodes()
        )

    def test_delete_never_targets_root(self):
        ldoc = labeled(sample_document(), "qed")
        for target in range(12):
            apply_operation(ldoc, Operation(OpKind.DELETE, target))
        assert ldoc.document.root is not None
        assert ldoc.document.root.name == "book"

    def test_set_text_and_rename(self):
        ldoc = labeled(sample_document(), "qed")
        apply_operation(ldoc, Operation(OpKind.SET_TEXT, 1, text="changed"))
        apply_operation(ldoc, Operation(OpKind.RENAME, 1, name="renamed"))
        assert ldoc.log.content_updates == 2


class TestPrograms:
    PROGRAM = [
        Operation(OpKind.PREPEND_CHILD, 0, name="intro"),
        Operation(OpKind.INSERT_AFTER, 3, name="aside"),
        Operation(OpKind.DELETE, 5),
        Operation(OpKind.APPEND_CHILD, 2, name="tail"),
        Operation(OpKind.INSERT_BEFORE, 1, name="wedge"),
    ]

    def test_same_program_same_tree_across_schemes(self):
        """Programs are scheme-independent tree transformations."""
        shapes = []
        for name in ("qed", "dewey", "prepost", "vector", "ordpath"):
            ldoc = labeled(sample_document(), name)
            apply_program(ldoc, self.PROGRAM)
            ldoc.verify_order()
            shapes.append([
                (n.name, n.depth()) for n in ldoc.document.labeled_nodes()
            ])
        assert all(shape == shapes[0] for shape in shapes)

    def test_program_is_reproducible(self):
        first = labeled(sample_document(), "cdqs")
        second = labeled(sample_document(), "cdqs")
        apply_program(first, self.PROGRAM)
        apply_program(second, self.PROGRAM)
        assert first.labels_in_document_order() == (
            second.labels_in_document_order()
        )
