"""UpdateBatch: deferred relabelling, equivalence with per-op updates."""

import random

import pytest

from conftest import all_scheme_names, labeled
from repro.data.sample import sample_document
from repro.encoding.table import EncodingTable
from repro.errors import BatchError, UpdateError
from repro.updates.batch import BatchResult, UpdateBatch, apply_batch
from repro.updates.operations import OpKind, Operation, apply_program
from repro.xmlmodel.parser import parse, parse_fragment
from repro.xmlmodel.serializer import serialize

BASE_XML = "<root><a><b/><c/></a><d><e/></d></root>"

#: The schemes the equivalence property must cover per the issue: prefix
#: (dewey, ordpath), quaternary (qed, cdqs), vector, and a containment
#: scheme (prepost).
EQUIVALENCE_SCHEMES = ["dewey", "ordpath", "qed", "cdqs", "vector", "prepost"]


def random_program(seed, size=40):
    rng = random.Random(seed)
    kinds = list(OpKind)
    return [
        Operation(kind=rng.choice(kinds), target=rng.randrange(0, 64),
                  name=f"n{index}", text=f"t{index}")
        for index in range(size)
    ]


def fresh_pair(scheme_name):
    """Two identically labelled documents for per-op vs batch runs."""
    return (
        labeled(parse(BASE_XML), scheme_name),
        labeled(parse(BASE_XML), scheme_name),
    )


class TestBatchBasics:
    def test_append_children_in_batch(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        with ldoc.batch() as batch:
            for index in range(5):
                batch.append_child(ldoc.document.root, f"kid{index}")
        ldoc.verify_order()
        assert ldoc.log.insertions == 5
        result = ldoc.last_batch_result
        assert isinstance(result, BatchResult)
        assert result.operations == 5
        assert result.labels_assigned == 5

    def test_persistent_scheme_takes_fast_path(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        with ldoc.batch() as batch:
            for index in range(10):
                batch.append_child(ldoc.document.root, f"kid{index}")
        result = ldoc.last_batch_result
        assert result.deferred_labels == 0
        assert result.relabel_passes == 0
        assert ldoc.log.relabel_events == 0

    def test_relabelling_scheme_consolidates_to_one_pass(self):
        ldoc = labeled(parse(BASE_XML), "prepost")
        first = ldoc.document.root.element_children()[0]
        with ldoc.batch() as batch:
            for index in range(20):
                batch.insert_after(first, f"kid{index}")
        result = ldoc.last_batch_result
        assert result.deferred_labels == 20
        assert result.relabel_passes == 1
        assert result.relabels_avoided == 19
        assert ldoc.log.relabel_events == 1
        ldoc.verify_order()

    def test_batch_results_carry_final_labels(self):
        ldoc = labeled(parse(BASE_XML), "dewey")
        first = ldoc.document.root.element_children()[0]
        with ldoc.batch() as batch:
            results = [batch.insert_before(first, f"kid{i}") for i in range(4)]
        for result in results:
            assert not result.deferred
            assert result.label == ldoc.labels[result.node.node_id]

    def test_insert_subtree_in_batch(self):
        ldoc = labeled(parse(BASE_XML), "cdqs")
        fragment = parse_fragment("<sub><x/><y>text</y></sub>")
        with ldoc.batch() as batch:
            result = batch.insert_subtree(ldoc.document.root, 0, fragment)
        assert result.kind == "insert-subtree"
        assert result.labels_assigned == 3
        ldoc.verify_order()

    def test_move_in_batch(self):
        ldoc = labeled(parse(BASE_XML), "vector")
        a, d = ldoc.document.root.element_children()
        b = a.element_children()[0]
        with ldoc.batch() as batch:
            result = batch.move(b, d, len(d.children))
        assert result.kind == "move"
        assert b.parent is d
        ldoc.verify_order()

    def test_delete_of_pending_node(self):
        ldoc = labeled(parse(BASE_XML), "prepost")
        first = ldoc.document.root.element_children()[0]
        with ldoc.batch() as batch:
            inserted = batch.insert_after(first, "doomed")
            assert inserted.deferred
            batch.delete(inserted.node)
            assert batch.pending == 0
        ldoc.verify_order()
        assert ldoc.log.insertions == 1
        assert ldoc.log.deletions == 1


class TestBatchErrors:
    def test_only_one_open_batch(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        batch = ldoc.batch()
        with pytest.raises(BatchError):
            ldoc.batch()
        batch.apply()
        ldoc.batch().apply()  # reopens fine once closed

    def test_verify_order_refuses_pending_batch(self):
        ldoc = labeled(parse(BASE_XML), "prepost")
        first = ldoc.document.root.element_children()[0]
        batch = ldoc.batch()
        batch.insert_after(first, "new")
        with pytest.raises(BatchError):
            ldoc.verify_order()
        batch.apply()
        ldoc.verify_order()

    def test_operations_after_apply_rejected(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        batch = ldoc.batch()
        batch.apply()
        with pytest.raises(BatchError):
            batch.append_child(ldoc.document.root, "late")
        with pytest.raises(BatchError):
            batch.apply()

    def test_context_manager_abandons_on_exception(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        with pytest.raises(RuntimeError):
            with ldoc.batch() as batch:
                batch.append_child(ldoc.document.root, "kid")
                raise RuntimeError("boom")
        assert ldoc._active_batch is None
        assert not batch.applied or batch.pending == 0

    def test_exception_rolls_back_labels_and_index(self):
        """Regression: an exception mid-batch used to abandon the batch
        with the tree mutated and pending nodes permanently unlabelled;
        it must instead restore the full pre-batch state."""
        ldoc = labeled(parse(BASE_XML), "dewey")
        before_xml = serialize(ldoc.document)
        before_labels = dict(ldoc.labels)
        before_index = dict(ldoc._label_index)
        with pytest.raises(RuntimeError):
            with ldoc.batch() as batch:
                root = ldoc.document.root
                batch.append_child(root, "kid")
                batch.insert_before(root.element_children()[0], "front")
                raise RuntimeError("mid-batch failure")
        assert serialize(ldoc.document) == before_xml
        assert ldoc.labels == before_labels
        assert ldoc._label_index == before_index
        ldoc.verify_order()

    def test_exception_rollback_restores_log_counters(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        ldoc.append_child(ldoc.document.root, "pre")  # insertions == 1
        with pytest.raises(RuntimeError):
            with ldoc.batch() as batch:
                batch.append_child(ldoc.document.root, "kid")
                raise RuntimeError("boom")
        assert ldoc.log.insertions == 1
        assert ldoc.log.rollbacks == 1

    def test_empty_batch_rollback_is_free(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        with pytest.raises(RuntimeError):
            with ldoc.batch() as batch:
                raise RuntimeError("boom")
        assert batch._undo is None  # no mutation, nothing captured
        assert ldoc._active_batch is None

    def test_move_validations(self):
        ldoc = labeled(parse(BASE_XML), "qed")
        root = ldoc.document.root
        a = root.element_children()[0]
        with ldoc.batch() as batch:
            with pytest.raises(UpdateError):
                batch.move(root, a, 0)
            with pytest.raises(UpdateError):
                batch.move(a, a.element_children()[0], 0)


class TestBatchEquivalence:
    """apply_batch(ops) == per-op application, structurally and in order."""

    @pytest.mark.parametrize("scheme_name", EQUIVALENCE_SCHEMES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_program_equivalence(self, scheme_name, seed):
        program = random_program(seed)
        per_op, batched = fresh_pair(scheme_name)
        apply_program(per_op, program)
        result = apply_batch(batched, program)
        assert isinstance(result, BatchResult)
        # Identical structure...
        assert serialize(batched.document) == serialize(per_op.document)
        # ...identical document order under each labelling...
        per_op.verify_order()
        batched.verify_order()
        # ...and an identical reconstruction from the encoding table.
        rebuilt_per_op = EncodingTable.from_labeled_document(
            per_op).reconstruct()
        rebuilt_batched = EncodingTable.from_labeled_document(
            batched).reconstruct()
        assert serialize(rebuilt_batched) == serialize(rebuilt_per_op)

    @pytest.mark.parametrize("scheme_name", EQUIVALENCE_SCHEMES)
    def test_counter_parity(self, scheme_name):
        program = random_program(99, size=60)
        per_op, batched = fresh_pair(scheme_name)
        apply_program(per_op, program)
        apply_batch(batched, program)
        assert batched.log.insertions == per_op.log.insertions
        assert batched.log.deletions == per_op.log.deletions
        assert batched.log.content_updates == per_op.log.content_updates
        # Relabelling is consolidated, never worse than per-op.
        assert batched.log.relabel_events <= max(per_op.log.relabel_events, 1)


class TestBatchAllSchemes:
    """The issue's acceptance bar: every registry scheme survives a batch."""

    @pytest.mark.parametrize("scheme_name", all_scheme_names())
    def test_verify_order_after_batch(self, scheme_name):
        program = random_program(7, size=30)
        ldoc = labeled(sample_document(), scheme_name)
        apply_batch(ldoc, program)
        ldoc.verify_order()

    @pytest.mark.parametrize("scheme_name", all_scheme_names())
    def test_structure_and_counters_match_per_op(self, scheme_name):
        program = random_program(11, size=30)
        per_op = labeled(sample_document(), scheme_name)
        batched = labeled(sample_document(), scheme_name)
        apply_program(per_op, program)
        apply_batch(batched, program)
        assert serialize(batched.document) == serialize(per_op.document)
        assert batched.log.insertions == per_op.log.insertions
        assert batched.log.deletions == per_op.log.deletions
        assert batched.log.content_updates == per_op.log.content_updates


class TestPersistentSchemeLabelIdentity:
    """Fast-path batches reproduce per-op labels exactly."""

    @pytest.mark.parametrize("scheme_name",
                             ["ordpath", "qed", "cdqs", "vector"])
    def test_labels_bit_identical(self, scheme_name):
        program = [
            Operation(kind=OpKind.INSERT_AFTER, target=i, name=f"n{i}")
            for i in range(25)
        ]
        per_op, batched = fresh_pair(scheme_name)
        apply_program(per_op, program)
        result = apply_batch(batched, program)
        assert result.relabel_passes == 0
        per_labels = {
            node.node_id: per_op.labels[node.node_id]
            for node in per_op.document.labeled_nodes()
        }
        batch_labels = {
            node.node_id: batched.labels[node.node_id]
            for node in batched.document.labeled_nodes()
        }
        assert batch_labels == per_labels
