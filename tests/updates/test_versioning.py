"""Versioned documents: commits, checkouts, annotations, diffs."""

import pytest

from repro.errors import UpdateError
from repro.updates.versioning import VersionedDocument

DOCUMENT = "<doc><a/><b><c>text</c></b><d/></doc>"


@pytest.fixture
def versioned():
    return VersionedDocument.from_xml(DOCUMENT, scheme="qed")


class TestCommits:
    def test_initial_commit_exists(self, versioned):
        assert len(versioned.revisions) == 1
        assert versioned.head.message == "initial import"

    def test_commit_captures_state(self, versioned):
        root = versioned.ldoc.document.root
        versioned.ldoc.append_child(root, "e")
        revision = versioned.commit("add e")
        assert revision.number == 1
        assert "<e/>" in revision.xml
        assert len(revision.label_owners) == 6

    def test_history_lines(self, versioned):
        versioned.ldoc.append_child(versioned.ldoc.document.root, "e")
        versioned.commit("add e")
        lines = versioned.history()
        assert lines[0].startswith("r0: initial import")
        assert lines[1].startswith("r1: add e")

    def test_unknown_revision(self, versioned):
        with pytest.raises(UpdateError):
            versioned.revision(9)

    def test_commit_records_scheme_and_config(self):
        from repro.updates.document import LabeledDocument
        from repro.schemes.registry import make_scheme
        from repro.xmlmodel.parser import parse

        ldoc = LabeledDocument(
            parse(DOCUMENT), make_scheme("dewey", component_bits=4)
        )
        versioned = VersionedDocument(ldoc)
        assert versioned.head.scheme_name == "dewey"
        assert versioned.head.scheme_config == {"component_bits": 4}
        assert versioned.head.collisions == 0

    def test_lsdx_duplicate_labels_surface_as_collisions(self):
        """Regression: ``label_owners`` is keyed by rendered label text,
        so an LSDX collision used to silently drop one node from the
        revision; the overwrite is now counted."""
        from repro.schemes.prefix.lsdx import LSDXScheme
        from repro.updates.document import LabeledDocument
        from repro.xmlmodel.builder import wide_tree

        ldoc = LabeledDocument(
            wide_tree(25), LSDXScheme(), on_collision="record"
        )
        children = ldoc.document.root.element_children()
        ldoc.append_child(ldoc.document.root, "tail")
        ldoc.insert_after(children[-1], "boom")  # duplicates "tail"'s label
        versioned = VersionedDocument(ldoc)
        head = versioned.head
        assert head.collisions == 1
        total_nodes = len(list(ldoc.document.labeled_nodes()))
        assert len(head.label_owners) == total_nodes - head.collisions


class TestCheckout:
    def test_checkout_restores_labels(self, versioned):
        before = versioned.ldoc.labels_in_document_order()
        root = versioned.ldoc.document.root
        versioned.ldoc.append_child(root, "later")
        versioned.commit("add later")
        past = versioned.checkout(0)
        assert past.labels_in_document_order() == before
        past.verify_order()

    def test_checkout_rebuilds_configured_scheme(self):
        """The revision records the scheme kwargs, so checkout must not
        fall back to a default-configured scheme of the same name."""
        from repro.schemes.registry import make_scheme
        from repro.updates.document import LabeledDocument
        from repro.xmlmodel.parser import parse

        ldoc = LabeledDocument(
            parse(DOCUMENT), make_scheme("dewey", component_bits=4)
        )
        versioned = VersionedDocument(ldoc)
        past = versioned.checkout(0)
        assert past.scheme.configuration == {"component_bits": 4}
        assert past.scheme.component_bits == 4
        assert past.labels_in_document_order() == (
            ldoc.labels_in_document_order()
        )

    def test_checkout_is_independent(self, versioned):
        past = versioned.checkout(0)
        past.append_child(past.document.root, "scratch")
        # The live document is untouched.
        assert all(
            node.name != "scratch"
            for node in versioned.ldoc.document.labeled_nodes()
        )


class TestAnnotations:
    def test_annotation_survives_edits_under_persistent_scheme(self, versioned):
        target = versioned.ldoc.document.root.element_children()[1]  # <b>
        versioned.annotate(target, "review this")
        for _ in range(5):
            versioned.ldoc.prepend_child(
                versioned.ldoc.document.root, "noise"
            )
        versioned.commit("heavy editing")
        intact, broken = versioned.annotation_integrity()
        assert (intact, broken) == (1, 0)
        resolved = versioned.resolve_annotation(versioned.annotations[0])
        assert resolved is target

    def test_annotation_breaks_under_shifting_scheme(self):
        versioned = VersionedDocument.from_xml(DOCUMENT, scheme="dewey")
        target = versioned.ldoc.document.root.element_children()[1]
        versioned.annotate(target, "review this")
        versioned.ldoc.prepend_child(versioned.ldoc.document.root, "noise")
        intact, broken = versioned.annotation_integrity()
        assert broken == 1

    def test_annotation_lost_after_delete(self, versioned):
        target = versioned.ldoc.document.root.element_children()[0]
        versioned.annotate(target, "gone soon")
        versioned.ldoc.delete(target)
        intact, broken = versioned.annotation_integrity()
        assert (intact, broken) == (0, 1)


class TestDiffs:
    def test_added_and_removed_labels(self, versioned):
        root = versioned.ldoc.document.root
        first = root.element_children()[0]
        versioned.ldoc.delete(first)
        added_node = versioned.ldoc.append_child(root, "fresh")
        versioned.commit("churn")
        diff = versioned.diff(0, 1)
        assert versioned.ldoc.format_label(added_node) in diff.added
        assert len(diff.removed) == 1
        assert diff.stable  # QED: surviving labels never move

    def test_stability_counts_reassignments(self):
        versioned = VersionedDocument.from_xml(DOCUMENT, scheme="dewey")
        versioned.ldoc.prepend_child(versioned.ldoc.document.root, "front")
        versioned.commit("shift everything")
        # DeweyID shifted the existing children onto new owners.
        assert versioned.label_stability(0, 1) > 0

    def test_persistent_scheme_is_stable_across_many_commits(self, versioned):
        root = versioned.ldoc.document.root
        for index in range(4):
            versioned.ldoc.prepend_child(root, f"gen{index}")
            versioned.commit(f"edit {index}")
        assert versioned.label_stability(0, versioned.head.number) == 0
