"""End-to-end integration: parse -> label -> update -> query -> reconstruct."""

import pytest

from conftest import labeled
from repro.axes.xpath import xpath
from repro.data.sample import SAMPLE_XML, sample_document
from repro.encoding.table import EncodingTable
from repro.updates.operations import adopt_subtree
from repro.xmlmodel.parser import parse
from repro.xmlmodel.serializer import serialize


@pytest.mark.parametrize("scheme_name", [
    "prepost", "dewey", "ordpath", "qed", "cdqs", "vector",
])
class TestFullPipeline:
    def test_lifecycle(self, scheme_name):
        # 1. Parse the paper's sample file and label it.
        ldoc = labeled(parse(SAMPLE_XML), scheme_name)
        ldoc.verify_order()

        # 2. Structural updates: a new chapter subtree and an attribute.
        root = ldoc.document.root
        adopt_subtree(
            ldoc, root, len(root.children),
            "<chapter n='1'><heading>Intro</heading></chapter>",
        )
        title = root.element_children()[0]
        ldoc.insert_attribute(title, "lang", "en")
        ldoc.verify_order()

        # 3. Content update.
        heading = [
            n for n in ldoc.document.labeled_nodes() if n.name == "heading"
        ][0]
        ldoc.set_text(heading, "Introduction")

        # 4. Query through the mini XPath (labels drive the axes).
        assert [n.name for n in xpath(ldoc, "/book/chapter/heading")] == [
            "heading"
        ]
        assert [n.value for n in xpath(ldoc, "//chapter/@n")] == ["1"]
        assert [n.name for n in xpath(ldoc, "//heading/ancestor::*")] == [
            "book", "chapter",
        ]

        # 5. Encode, reconstruct, serialize (Definition 2 closure).
        table = EncodingTable.from_labeled_document(ldoc)
        rebuilt = table.reconstruct()
        assert [n.name for n in rebuilt.labeled_nodes()] == [
            n.name for n in ldoc.document.labeled_nodes()
        ]
        rendered = serialize(rebuilt)
        assert "Introduction" in rendered
        assert 'lang="en"' in rendered


def test_readme_quickstart_example():
    """The exact snippet from the package docstring must keep working."""
    from repro import LabeledDocument, make_scheme, parse as repro_parse

    doc = repro_parse("<a><b/><c/></a>")
    ldoc = LabeledDocument(doc, make_scheme("qed"))
    b = doc.root.element_children()[0]
    ldoc.insert_after(b, "new")
    ldoc.verify_order()
    assert ldoc.log.relabeled_nodes == 0


def test_version_exposed():
    import repro

    assert repro.__version__
