"""Batched updates vs per-operation updates (the bulk-loading fast path).

The survey prices every insertion at the scheme's worst case: DeweyID
shifts follow-siblings, the XPath Accelerator recomputes the whole
pre/post plane, Cohen renumbers.  Applied per-operation, a 2000-insert
workload therefore pays up to 2000 relabelling passes.  The
:class:`~repro.updates.batch.UpdateBatch` engine defers labelling to a
single consolidated pass, so the same workload pays at most one.

This benchmark runs the two paths over identical workloads and reports,
per scheme, wall-clock time, relabel passes/relabelled nodes (from the
update log) and label comparisons (from the metrics registry):

* ``skewed_insertions`` — every insert lands before one fixed anchor,
  the survey's skewed frequent-update scenario;
* XMark bulk bids — a stream of ``bidder`` appends into one hot open
  auction of a generated auction-site document.

Run standalone (``python benchmarks/bench_batch_updates.py [--quick]``)
or under pytest, where the assertions guard the claim: on every
relabelling scheme the batch does fewer relabel passes and fewer label
comparisons than per-op, and is not slower on the big workloads.
"""

from __future__ import annotations

import time

from _common import bench_args, fresh
from repro.observability.metrics import get_registry
from repro.xmlmodel.generator import random_document
from repro.xmlmodel.xmark import xmark_document

#: Relabelling schemes — where deferred consolidation changes the bill.
RELABELLING_SCHEMES = ["prepost", "dewey", "cohen", "prime"]
#: Persistent schemes — included to show the batch path degenerates
#: gracefully (same labels, no passes either way).
PERSISTENT_SCHEMES = ["qed", "vector"]

FULL_OPS = 2000
QUICK_OPS = 120
FULL_BIDS = 400
QUICK_BIDS = 40


def _measure(build_ldoc, run):
    """Run one workload; return (ldoc, seconds, metric deltas)."""
    ldoc = build_ldoc()
    registry = get_registry()
    with registry.scoped() as delta:
        started = time.perf_counter()
        run(ldoc)
        elapsed = time.perf_counter() - started
    ldoc.verify_order()
    return ldoc, elapsed, delta


def _skewed_anchor(ldoc):
    return ldoc.document.root.element_children()[-1]


def run_skewed(scheme_name, ops, batched):
    """Skewed insertions before one anchor, per-op or batched."""
    def build():
        return fresh(scheme_name, random_document(300, seed=5))

    def per_op(ldoc):
        anchor = _skewed_anchor(ldoc)
        for index in range(ops):
            ldoc.updates.insert_before(anchor, "skew")

    def in_batch(ldoc):
        anchor = _skewed_anchor(ldoc)
        with ldoc.batch() as batch:
            for index in range(ops):
                batch.insert_before(anchor, "skew")

    return _measure(build, in_batch if batched else per_op)


def run_xmark_bulk(scheme_name, bids, batched):
    """Bulk bid load into one hot auction of an XMark document."""
    def build():
        return fresh(scheme_name, xmark_document(scale=0.2, seed=3))

    def hot_auction(ldoc):
        site = ldoc.document.root
        open_auctions = next(
            child for child in site.element_children()
            if child.name == "open_auctions"
        )
        return open_auctions.element_children()[0]

    def per_op(ldoc):
        auction = hot_auction(ldoc)
        for index in range(bids):
            ldoc.updates.prepend_child(auction, "bidder")

    def in_batch(ldoc):
        auction = hot_auction(ldoc)
        with ldoc.batch() as batch:
            for index in range(bids):
                batch.prepend_child(auction, "bidder")

    return _measure(build, in_batch if batched else per_op)


def compare_paths(workload, scheme_name, ops):
    """Both paths of one workload -> comparison record."""
    per_ldoc, per_secs, per_delta = workload(scheme_name, ops, batched=False)
    bat_ldoc, bat_secs, bat_delta = workload(scheme_name, ops, batched=True)
    result = bat_ldoc.last_batch_result
    return {
        "scheme": scheme_name,
        "per_secs": per_secs,
        "bat_secs": bat_secs,
        "per_relabel_events": per_ldoc.log.relabel_events,
        "bat_relabel_passes": result.relabel_passes if result else 0,
        "per_relabeled_nodes": per_ldoc.log.relabeled_nodes,
        "bat_relabeled_nodes": bat_ldoc.log.relabeled_nodes,
        "per_comparisons": per_delta.get("scheme.comparisons", 0),
        "bat_comparisons": bat_delta.get("scheme.comparisons", 0),
        "relabels_avoided": result.relabels_avoided if result else 0,
    }


def check(record):
    """The benchmark's claims, shared by pytest and standalone runs."""
    if record["scheme"] in RELABELLING_SCHEMES:
        assert record["bat_relabel_passes"] < record["per_relabel_events"], \
            record
        assert record["bat_comparisons"] <= record["per_comparisons"], record
        assert record["bat_relabeled_nodes"] <= record["per_relabeled_nodes"], \
            record
    else:
        assert record["bat_relabel_passes"] == 0, record


def _render(records, title):
    lines = [title,
             f"  {'scheme':10s} {'per-op s':>9s} {'batch s':>9s} "
             f"{'speedup':>8s} {'relabels':>9s} {'passes':>7s} "
             f"{'cmp saved':>10s}"]
    for record in records:
        speedup = (record["per_secs"] / record["bat_secs"]
                   if record["bat_secs"] else float("inf"))
        saved = record["per_comparisons"] - record["bat_comparisons"]
        lines.append(
            f"  {record['scheme']:10s} {record['per_secs']:9.3f} "
            f"{record['bat_secs']:9.3f} {speedup:7.1f}x "
            f"{record['per_relabel_events']:9d} "
            f"{record['bat_relabel_passes']:7d} {saved:10.0f}"
        )
    return "\n".join(lines)


def run_cache_payoff(scheme_name, ops):
    """Label comparisons of two order verifications after a bulk load.

    The first verification populates the scheme's memoized comparison
    cache; the second replays the same label pairs and should reach the
    scheme's ``compare`` far less often — the ``compare_cache.hits``
    payoff the joins and twig matcher also enjoy.
    """
    from repro.schemes.cache import comparison_cache_for

    ldoc, _secs, _delta = run_skewed(scheme_name, ops, batched=True)
    comparison_cache_for(ldoc.scheme).invalidate()  # start cold
    registry = get_registry()
    with registry.scoped() as first:
        ldoc.verify_order()
    with registry.scoped() as second:
        ldoc.verify_order()
    return {
        "scheme": scheme_name,
        "first_misses": first.get("compare_cache.misses", 0),
        "second_misses": second.get("compare_cache.misses", 0),
        "second_hits": second.get("compare_cache.hits", 0),
    }


def check_cache(record):
    assert record["second_misses"] < record["first_misses"], record
    assert record["second_hits"] > 0, record


# ----------------------------------------------------------------------
# pytest entry points (quick sizes keep the suite fast)
# ----------------------------------------------------------------------

def bench_skewed_batch_beats_per_op(benchmark):
    """Batching consolidates skewed-insert relabelling on every scheme."""
    def regenerate():
        return [
            compare_paths(run_skewed, name, QUICK_OPS)
            for name in RELABELLING_SCHEMES + PERSISTENT_SCHEMES
        ]

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for record in records:
        check(record)


def bench_xmark_bulk_load(benchmark):
    """Batched XMark bid streams relabel at most once."""
    def regenerate():
        return [
            compare_paths(run_xmark_bulk, name, QUICK_BIDS)
            for name in ["prepost", "dewey", "cohen"]
        ]

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for record in records:
        check(record)


def bench_comparison_cache_payoff(benchmark):
    """Repeated order verification re-pays only uncached comparisons."""
    def regenerate():
        return [
            run_cache_payoff(name, QUICK_OPS)
            for name in ["dewey", "qed", "prepost"]
        ]

    records = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for record in records:
        check_cache(record)


# ----------------------------------------------------------------------
# standalone report
# ----------------------------------------------------------------------

def main(argv=None):
    args = bench_args(__doc__, argv)
    ops = QUICK_OPS if args.quick else FULL_OPS
    bids = QUICK_BIDS if args.quick else FULL_BIDS

    schemes = RELABELLING_SCHEMES + PERSISTENT_SCHEMES
    skewed = [compare_paths(run_skewed, name, ops) for name in schemes]
    print(_render(skewed, f"Skewed insertions ({ops} ops)"))
    for record in skewed:
        check(record)

    xmark = [
        compare_paths(run_xmark_bulk, name, bids)
        for name in ["prepost", "dewey", "cohen"]
    ]
    print()
    print(_render(xmark, f"XMark bulk bids ({bids} bids, hot auction)"))
    for record in xmark:
        check(record)

    cache_records = [
        run_cache_payoff(name, ops) for name in ["dewey", "qed", "prepost"]
    ]
    print()
    print("Comparison cache: uncached label comparisons per verification")
    print(f"  {'scheme':10s} {'1st verify':>11s} {'2nd verify':>11s} "
          f"{'cache hits':>11s}")
    for record in cache_records:
        print(f"  {record['scheme']:10s} "
              f"{record['first_misses']:11.0f} "
              f"{record['second_misses']:11.0f} "
              f"{record['second_hits']:11.0f}")
        check_cache(record)

    wins = sum(
        1 for record in skewed + xmark
        if record["bat_relabel_passes"] < record["per_relabel_events"]
    )
    print(f"\nbatch consolidated relabelling on {wins} workload runs; "
          f"all claims hold")
    return ([{"workload": "skewed", **record} for record in skewed]
            + [{"workload": "xmark", **record} for record in xmark]
            + [{"workload": "cache_payoff", **record}
               for record in cache_records])


if __name__ == "__main__":
    main()
