"""Ablation: the two design axes inside the string-scheme family.

DESIGN.md calls out the 2x2 design space the Li/Ling line of work walks:

                    sparse one-sided rules     compact shortest-code
    binary codes    ImprovedBinary [13]        CDBS [15]
    quaternary      QED [14]                   CDQS [16]

The alphabet axis buys the separator trick (quaternary reserves 00 and
becomes overflow-free; binary cannot spare a symbol and keeps a length
field), and the allocation axis buys compactness.  This bench isolates
both effects on identical inputs.
"""

from _common import bench_args, fresh
from repro.updates.workloads import skewed_insertions
from repro.xmlmodel.builder import wide_tree

SCHEMES = {
    ("binary", "sparse"): "improved-binary",
    ("binary", "compact"): "cdbs",
    ("quaternary", "sparse"): "qed",
    ("quaternary", "compact"): "cdqs",
}

SIBLINGS = 200
PRESSURE = 200


def regenerate():
    results = {}
    for (alphabet, allocation), name in SCHEMES.items():
        # Bulk compactness on a flat 200-sibling document.
        bulk = fresh(name, wide_tree(SIBLINGS))
        bulk_bits = bulk.total_label_bits() / (SIBLINGS + 1)
        # Overflow behaviour under one-position pressure (tight fields
        # where the scheme has them).
        config = {"length_field_bits": 6} if alphabet == "binary" else {}
        pressured = fresh(name, **config)
        skewed_insertions(pressured, PRESSURE)
        results[name] = {
            "alphabet": alphabet,
            "allocation": allocation,
            "bulk_bits_per_label": round(bulk_bits, 1),
            "relabel_events": pressured.log.relabel_events,
            "overflow_events": pressured.log.overflow_events,
        }
    return results


def bench_ablation_code_design(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    # Allocation axis: compact beats sparse within each alphabet.
    assert results["cdbs"]["bulk_bits_per_label"] <= (
        results["improved-binary"]["bulk_bits_per_label"]
    )
    assert results["cdqs"]["bulk_bits_per_label"] <= (
        results["qed"]["bulk_bits_per_label"]
    )
    # Alphabet axis: only the quaternary (separator) designs escape the
    # overflow problem under pressure.
    assert results["improved-binary"]["overflow_events"] >= 1
    assert results["cdbs"]["overflow_events"] >= 1
    assert results["qed"]["overflow_events"] == 0
    assert results["cdqs"]["overflow_events"] == 0
    assert results["qed"]["relabel_events"] == 0
    assert results["cdqs"]["relabel_events"] == 0


def main(argv=None):
    bench_args(__doc__, argv)  # ablation grid is constant-sized
    results = regenerate()
    print("Ablation: alphabet x allocation "
          f"({SIBLINGS} siblings bulk; {PRESSURE} skewed inserts)")
    print(f"{'scheme':17s} {'alphabet':11s} {'allocation':11s} "
          f"{'bulk b/label':>12s} {'relabels':>9s} {'overflows':>10s}")
    rows = []
    for name, stats in results.items():
        print(f"{name:17s} {stats['alphabet']:11s} {stats['allocation']:11s} "
              f"{stats['bulk_bits_per_label']:12.1f} "
              f"{stats['relabel_events']:9d} {stats['overflow_events']:10d}")
        rows.append({"scheme": name, **stats})
    return rows


if __name__ == "__main__":
    main()
