"""Shared helpers for the benchmark scripts.

Lives outside conftest so the scripts work both under pytest (where the
name ``conftest`` is already taken by the test suite's conftest) and as
standalone programs (``python benchmarks/bench_figure4_ordpath.py`` or
``python -m repro figure 4``).
"""

from __future__ import annotations

import argparse
import contextlib

from repro.data.sample import sample_document
from repro.updates.document import LabeledDocument
from repro.schemes.registry import make_scheme


def bench_args(doc: str, argv=None) -> argparse.Namespace:
    """The uniform bench-module argument surface.

    Every ``bench_*`` module's ``main(argv=None)`` parses through this,
    so the telemetry harness (``python -m repro bench run``) can pass
    ``["--quick"]`` to any section.  Modules whose workload has one
    fixed (tiny) size simply ignore ``args.quick``.
    """
    parser = argparse.ArgumentParser(
        description=(doc or "").splitlines()[0] if doc else None
    )
    parser.add_argument("--quick", action="store_true",
                        help="small smoke-test sizes (CI / bench run)")
    return parser.parse_args(argv)


def fresh(scheme_name: str, document=None, **kwargs) -> LabeledDocument:
    """A freshly labelled document for one benchmark round."""
    return LabeledDocument(
        document if document is not None else sample_document(),
        make_scheme(scheme_name, **kwargs),
        on_collision="record",
    )


@contextlib.contextmanager
def maybe_traced(capture: bool = False, export_path=None):
    """Opt-in trace capture around one benchmark round.

    With ``capture=False`` (the default) this is a bare passthrough —
    the global tracer stays disabled and instrumented code runs its
    no-op fast path, so untraced benchmark numbers are unaffected.
    With ``capture=True`` it yields an
    :class:`~repro.observability.tracing.InMemorySpanExporter` holding
    the finished spans; pass ``export_path`` to also stream them to a
    JSON-lines file.
    """
    if not capture:
        yield None
        return
    from repro.observability.tracing import (
        InMemorySpanExporter,
        JSONLinesSpanExporter,
        tracing_enabled,
    )

    buffer = InMemorySpanExporter()
    sink = None
    if export_path is not None:
        sink = JSONLinesSpanExporter(export_path)
    try:
        with tracing_enabled(buffer) as tracer:
            if sink is not None:
                tracer.add_exporter(sink)
            yield buffer
    finally:
        if sink is not None:
            sink.close()
