"""Shared helpers for the benchmark scripts.

Lives outside conftest so the scripts work both under pytest (where the
name ``conftest`` is already taken by the test suite's conftest) and as
standalone programs (``python benchmarks/bench_figure4_ordpath.py`` or
``python -m repro figure 4``).
"""

from __future__ import annotations

from repro.data.sample import sample_document
from repro.updates.document import LabeledDocument
from repro.schemes.registry import make_scheme


def fresh(scheme_name: str, document=None, **kwargs) -> LabeledDocument:
    """A freshly labelled document for one benchmark round."""
    return LabeledDocument(
        document if document is not None else sample_document(),
        make_scheme(scheme_name, **kwargs),
        on_collision="record",
    )
