"""Section 3.1.2 claim: LSDX "do[es] not always produce unique node labels".

The corner cases catalogued by Sans & Laurent [19] are regenerated: the
published between-insertion rule lands on an existing label whenever the
open interval is too tight for increment-or-append (for example between
``z`` and ``zb``).  QED under the same update sequence stays collision
free, which is the survey's reason for dismissing the LSDX family.
"""

from _common import bench_args, fresh
from repro.xmlmodel.builder import wide_tree


def collision_scenario(scheme_name):
    """Append past z, then insert between the last two children."""
    ldoc = fresh(scheme_name, wide_tree(25))  # children b..z for LSDX
    children = ldoc.document.root.element_children()
    ldoc.append_child(ldoc.document.root, "tail")
    ldoc.insert_after(children[-1], "squeeze")
    return ldoc.log.collisions


def tight_interval_sweep(scheme_name, rounds=12):
    """Repeatedly halve one interval; count duplicate labels."""
    ldoc = fresh(scheme_name, wide_tree(2))
    left, right = ldoc.document.root.element_children()
    collisions = 0
    for _ in range(rounds):
        ldoc.insert_after(left, "wedge")
        collisions = ldoc.log.collisions
    return collisions


def regenerate():
    return {
        "lsdx z/zb corner case": collision_scenario("lsdx"),
        "comd z/zb corner case": collision_scenario("comd"),
        "qed same scenario": collision_scenario("qed"),
        "lsdx tight-interval sweep": tight_interval_sweep("lsdx"),
        "qed tight-interval sweep": tight_interval_sweep("qed"),
    }


def bench_lsdx_collision_corner_cases(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert results["lsdx z/zb corner case"] >= 1
    assert results["comd z/zb corner case"] >= 1  # inherited defect
    assert results["qed same scenario"] == 0
    assert results["qed tight-interval sweep"] == 0


def main(argv=None):
    bench_args(__doc__, argv)  # corner cases are constant-sized
    results = regenerate()
    print("Duplicate labels produced (collisions)")
    rows = []
    for scenario, count in results.items():
        print(f"  {scenario:28s} {count}")
        rows.append({"scenario": scenario, "collisions": count})
    return rows


if __name__ == "__main__":
    main()
