"""Figure 5: the LSDX-labelled tree, including the three insertions.

Grey nodes: before-first under 1a.b (gives 2ab.ab), after-last under
1a.c (gives 2ac.c) and between 2ad.b and 2ad.c (gives 2ad.bb).
"""

from _common import bench_args, fresh
from repro.data.sample import (
    FIGURE_5_INITIAL_LSDX_LABELS,
    FIGURE_5_INSERTED,
    figure_tree,
)


def regenerate():
    ldoc = fresh("lsdx", figure_tree())
    initial = [
        ldoc.format_label(node) for node in ldoc.document.labeled_nodes()
    ]
    node_b, node_c, node_d = ldoc.document.root.element_children()
    inserted = {
        "before_first_under_1a.b": ldoc.format_label(
            ldoc.prepend_child(node_b, "new")
        ),
        "after_last_under_1a.c": ldoc.format_label(
            ldoc.append_child(node_c, "new")
        ),
        "between_2ad.b_and_2ad.c": ldoc.format_label(
            ldoc.insert_after(node_d.element_children()[0], "new")
        ),
    }
    return initial, inserted


def bench_figure5_lsdx(benchmark):
    initial, inserted = benchmark(regenerate)
    assert initial == FIGURE_5_INITIAL_LSDX_LABELS
    assert inserted == FIGURE_5_INSERTED


def main(argv=None):
    bench_args(__doc__, argv)  # fixed-size reproduction; --quick is a no-op
    initial, inserted = regenerate()
    print("Figure 5 — LSDX labelled XML tree")
    print("  initial:", " ".join(initial))
    for description, label in inserted.items():
        print(f"  inserted {description}: {label}")
    matches = (initial == FIGURE_5_INITIAL_LSDX_LABELS
               and inserted == FIGURE_5_INSERTED)
    print("matches paper:", matches)
    return [{"figure": "5", "inserted": dict(inserted),
             "matches_paper": matches}]


if __name__ == "__main__":
    main()
