"""Figure 7: the evaluation framework matrix — the paper's headline table.

Runs every probe over all twelve surveyed schemes, rebuilds the 12 x 10
matrix and asserts cell-for-cell agreement with the published grades.
Also reproduces the section 5.2 analysis: CDQS satisfies the greatest
number of properties.
"""

from _common import bench_args
from repro.core.matrix import EvaluationMatrix
from repro.core.report import most_generic_scheme, reproduction_report


def regenerate():
    return EvaluationMatrix.generate()


def bench_figure7_matrix(benchmark):
    matrix = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    assert matrix.diff_against_paper() == []
    assert most_generic_scheme(matrix) == "cdqs"


def bench_figure7_single_row(benchmark):
    """Per-row probe cost (the CDQS row, the framework's busiest)."""
    from repro.core.matrix import EvaluationFramework

    framework = EvaluationFramework()
    row = benchmark.pedantic(framework.evaluate, args=("cdqs",), rounds=3)
    assert row.grades


def main(argv=None):
    bench_args(__doc__, argv)  # fixed-size reproduction; --quick is a no-op
    matrix = regenerate()
    print(reproduction_report(matrix))
    print()
    print("Section 5.2 analysis — most generic scheme:",
          most_generic_scheme(matrix))
    return [{
        "figure": "7",
        "schemes": len(matrix.rows),
        "diff_cells": len(matrix.diff_against_paper()),
        "most_generic": most_generic_scheme(matrix),
        "matches_paper": matrix.matches_paper(),
    }]


if __name__ == "__main__":
    main()
