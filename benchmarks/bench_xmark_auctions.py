"""The auction workload: an XMark-shaped document under a bidding stream.

The survey's real-world framing ("the real-world requirement to support
efficient updates to XML documents") in one experiment: bulk-load an
auction site, then stream bids into the open auctions — localized
structural growth inside a large, mostly static document.  Reports
bulk-labelling cost, per-scheme relabelling bills for the stream, and
query answers that must stay identical throughout.
"""

import pytest

from _common import bench_args
from repro.axes.xpath import xpath
from repro.schemes.registry import make_scheme
from repro.updates.document import LabeledDocument
from repro.xmlmodel.xmark import bidding_stream, xmark_document

SCALE = 2.0
QUICK_SCALE = 0.4
BIDS = 150
QUICK_BIDS = 30

SCHEMES = ["prepost", "dewey", "ordpath", "qed", "cdqs", "vector"]
PERSISTENT = {"ordpath", "qed", "cdqs", "vector"}


def build(scheme_name, scale=SCALE):
    return LabeledDocument(
        xmark_document(scale=scale, seed=11), make_scheme(scheme_name)
    )


@pytest.mark.parametrize("scheme_name", SCHEMES)
def bench_bulk_load(benchmark, scheme_name):
    document = xmark_document(scale=SCALE, seed=11)
    scheme = make_scheme(scheme_name)
    labels = benchmark(scheme.label_tree, document)
    assert len(labels) == document.labeled_size()


def bench_bidding_stream_relabel_bill(benchmark):
    def regenerate():
        bills = {}
        for scheme_name in SCHEMES:
            ldoc = build(scheme_name)
            result = bidding_stream(ldoc, BIDS, seed=5, hot_auction=0)
            ldoc.verify_order()
            bills[scheme_name] = result.relabeled_nodes
        return bills

    bills = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for scheme_name in PERSISTENT:
        assert bills[scheme_name] == 0, (scheme_name, bills)
    assert bills["prepost"] > 0


def bench_queries_stable_through_stream(benchmark):
    """Query answers are identical before, during, and after bidding."""
    def check():
        ldoc = build("cdqs")
        people_before = [
            n.node_id for n in xpath(ldoc, "//person/name")
        ]
        bidding_stream(ldoc, BIDS // 2, seed=5, hot_auction=1)
        people_after = [
            n.node_id for n in xpath(ldoc, "//person/name")
        ]
        assert people_after == people_before
        bidders = xpath(ldoc, "//open_auction[2]//bidder")
        return len(bidders)

    bidders = benchmark.pedantic(check, rounds=1, iterations=1)
    assert bidders >= BIDS // 2


def main(argv=None):
    args = bench_args(__doc__, argv)
    scale = QUICK_SCALE if args.quick else SCALE
    bids = QUICK_BIDS if args.quick else BIDS
    site_nodes = xmark_document(scale=scale, seed=11).labeled_size()
    print(f"XMark-style auction site, scale {scale} "
          f"({site_nodes} labelled nodes); "
          f"{bids} bids into one hot auction\n")
    print(f"{'scheme':10s} {'relabelled':>10s} {'max label bits':>15s}")
    rows = []
    for scheme_name in SCHEMES:
        ldoc = build(scheme_name, scale=scale)
        result = bidding_stream(ldoc, bids, seed=5, hot_auction=0)
        print(f"{scheme_name:10s} {result.relabeled_nodes:10d} "
              f"{result.max_label_bits:15d}")
        rows.append({"scheme": scheme_name, "site_nodes": site_nodes,
                     "bids": bids,
                     "relabeled_nodes": result.relabeled_nodes,
                     "max_label_bits": result.max_label_bits})
    return rows


if __name__ == "__main__":
    main()
