"""Figure 1(b): the preorder/postorder-labelled sample document.

Regenerates the exact ``pre,post`` labels the paper draws over the tree
representation of the Figure 1(a) sample file, and times the labelling.
"""

from _common import bench_args
from repro.data.sample import FIGURE_1B_PRE_POST, sample_document
from repro.schemes.containment.prepost import PrePostScheme


def regenerate():
    """Label the sample document; return (pre, post) pairs in doc order."""
    document = sample_document()
    scheme = PrePostScheme()
    labels = scheme.label_tree(document)
    return [
        (labels[node.node_id].pre, labels[node.node_id].post)
        for node in document.labeled_nodes()
    ], document


def bench_figure1_prepost_labelling(benchmark):
    pairs, document = benchmark(regenerate)
    assert pairs == FIGURE_1B_PRE_POST


def main(argv=None):
    bench_args(__doc__, argv)  # fixed-size reproduction; --quick is a no-op
    pairs, document = regenerate()
    print("Figure 1(b) — pre/post labels of the sample document")
    for (pre, post), node in zip(pairs, document.labeled_nodes()):
        print(f"  {pre},{post}\t{node.kind.value}\t{node.name}")
    matches = pairs == FIGURE_1B_PRE_POST
    print("matches paper:", matches)
    return [{"figure": "1b", "labels": len(pairs),
             "matches_paper": matches}]


if __name__ == "__main__":
    main()
