"""Section 3.1.1 claim: gap and float containment labelling do not scale.

"Several extensions were proposed which permit gaps in the labelling
schemes ... these solutions serve to increase the label size through the
sparse allocation of labels and only postpone the relabelling process
until the interval gaps have been consumed" — and float labels (QRS)
"suffer from the same limitations".

The bench sweeps gap sizes and measures how many skewed insertions each
configuration absorbs before its first relabel, plus where IEEE-754
doubles give out for QRS.
"""

from _common import bench_args, fresh

GAPS = [4, 8, 16, 64]
PRESSURE = 120


def inserts_before_first_relabel(ldoc, limit=PRESSURE):
    anchor = ldoc.document.root.element_children()[-1]
    for count in range(1, limit + 1):
        ldoc.insert_before(anchor, "skew")
        if ldoc.log.relabel_events:
            return count
    return limit + 1


def regenerate():
    results = {}
    for gap in GAPS:
        ldoc = fresh("xrel", gap=gap)
        results[f"xrel gap={gap}"] = inserts_before_first_relabel(ldoc)
    results["qrs (float64)"] = inserts_before_first_relabel(
        fresh("qrs"), limit=200
    )
    results["qed (no gaps needed)"] = inserts_before_first_relabel(
        fresh("qed"), limit=200
    )
    return results


def bench_gap_postponement(benchmark):
    results = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    # Bigger gaps postpone longer but every gap eventually relabels.
    absorbed = [results[f"xrel gap={gap}"] for gap in GAPS]
    assert absorbed == sorted(absorbed)
    assert absorbed[-1] <= PRESSURE
    # QRS exhausts double precision after ~50 midpoint halvings.
    assert results["qrs (float64)"] <= 80
    # QED never relabels: the run completes without an event.
    assert results["qed (no gaps needed)"] == 201


def main(argv=None):
    bench_args(__doc__, argv)  # sweep is already CI-sized
    results = regenerate()
    print("Skewed insertions absorbed before the first relabel")
    rows = []
    for configuration, count in results.items():
        never = count > PRESSURE
        note = " (never relabelled)" if never else ""
        print(f"  {configuration:24s} {count:4d}{note}")
        rows.append({"configuration": configuration,
                     "inserts_absorbed": count,
                     "never_relabelled": never})
    return rows


if __name__ == "__main__":
    main()
