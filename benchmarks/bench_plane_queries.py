"""The XPath Accelerator's acceleration: plane windows vs label scans.

Section 3.1.1 quotes Grust: major-axis steps are "rectangular region
queries in the pre/post labelled plane".  This bench compares the
plane's window evaluation against the generic full-table label scan for
the same axes on the same document — the windows avoid visiting nodes
outside the answer's pre range.
"""

from _common import bench_args
from repro.axes.evaluator import AxisEvaluator
from repro.axes.plane import PrePostPlane
from repro.xmlmodel.generator import random_document

DOCUMENT_NODES = 400


def build():
    document = random_document(DOCUMENT_NODES, seed=17)
    plane = PrePostPlane(document)
    scan = AxisEvaluator(plane.ldoc, allow_fallback=False)
    context = document.root.element_children()[0]
    return plane, scan, context


def bench_plane_descendant_window(benchmark):
    plane, _scan, context = build()
    result = benchmark(plane.descendants, context)
    assert result is not None


def bench_scan_descendant_axis(benchmark):
    plane, scan, context = build()
    result = benchmark(scan.evaluate, "descendant", context)
    assert result is not None


def bench_plane_matches_scan(benchmark):
    """Same answers either way, for all four major axes."""
    def check():
        plane, scan, _context = build()
        nodes = list(plane.document.labeled_nodes())[:20]
        for node in nodes:
            assert [x.node_id for x in plane.descendants(node)] == [
                x.node_id for x in scan.evaluate("descendant", node)
            ]
            assert [x.node_id for x in plane.ancestors(node)] == [
                x.node_id for x in scan.evaluate("ancestor", node)
            ]
            assert [x.node_id for x in plane.following(node)] == [
                x.node_id for x in scan.evaluate("following", node)
            ]
            assert [x.node_id for x in plane.preceding(node)] == [
                x.node_id for x in scan.evaluate("preceding", node)
            ]
        return True

    assert benchmark.pedantic(check, rounds=1, iterations=1)


def main(argv=None):
    import time

    args = bench_args(__doc__, argv)
    evaluations = 10 if args.quick else 50
    plane, scan, context = build()
    rows = []
    for axis, plane_call in (
        ("descendant", plane.descendants),
        ("ancestor", plane.ancestors),
        ("following", plane.following),
        ("preceding", plane.preceding),
    ):
        start = time.perf_counter()
        for _ in range(evaluations):
            plane_call(context)
        plane_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        for _ in range(evaluations):
            scan.evaluate(axis, context)
        scan_ms = (time.perf_counter() - start) * 1000
        print(f"{axis:11s} plane={plane_ms:7.1f} ms  scan={scan_ms:7.1f} ms "
              f"({evaluations} evaluations, {DOCUMENT_NODES}-node document)")
        rows.append({"axis": axis, "evaluations": evaluations,
                     "plane_ms": round(plane_ms, 3),
                     "scan_ms": round(scan_ms, 3)})
    return rows


if __name__ == "__main__":
    main()
