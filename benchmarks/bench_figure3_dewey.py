"""Figure 3: the DeweyID-labelled example tree."""

from _common import bench_args
from repro.data.sample import FIGURE_3_DEWEY_LABELS, figure3_tree
from repro.schemes.prefix.dewey import DeweyScheme


def regenerate():
    document = figure3_tree()
    scheme = DeweyScheme()
    labels = scheme.label_tree(document)
    return [
        scheme.format_label(labels[node.node_id])
        for node in document.labeled_nodes()
    ]


def bench_figure3_dewey_labelling(benchmark):
    rendered = benchmark(regenerate)
    assert rendered == FIGURE_3_DEWEY_LABELS


def main(argv=None):
    bench_args(__doc__, argv)  # fixed-size reproduction; --quick is a no-op
    rendered = regenerate()
    print("Figure 3 — DeweyID labelled XML tree")
    for label in rendered:
        print(f"  {label}")
    matches = rendered == FIGURE_3_DEWEY_LABELS
    print("matches paper:", matches)
    return [{"figure": "3", "labels": len(rendered),
             "matches_paper": matches}]


if __name__ == "__main__":
    main()
