"""Section 6's future work, delivered: extension rows for the framework.

"Using our existing framework, we will now seek to evaluate these and
other schemes" — the paper's conclusion names the Prime number scheme
[25] and DDE [28].  This bench runs the unmodified probe suite over all
five implemented extensions (CDBS, Cohen, Com-D, DDE, Prime) and prints
the extended matrix, with the measured grades asserted against what each
scheme's design predicts.
"""

from _common import bench_args
from repro.core.matrix import EvaluationMatrix
from repro.core.properties import Compliance, Property


def regenerate():
    return EvaluationMatrix.generate(include_extensions=True)


def bench_extended_matrix(benchmark):
    matrix = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    # The twelve paper rows still agree with Figure 7.
    assert matrix.diff_against_paper() == []

    # DDE delivers on its title ("From Dewey to a Fully Dynamic XML
    # Labeling Scheme"): persistent, overflow-free, full XPath support.
    dde = matrix.row("dde").grades
    assert dde[Property.PERSISTENT_LABELS] is Compliance.FULL
    assert dde[Property.OVERFLOW_FREEDOM] is Compliance.FULL
    assert dde[Property.XPATH_EVALUATION] is Compliance.FULL
    assert dde[Property.DIVISION_FREEDOM] is Compliance.FULL

    # CDBS: persistent and compact, but its fixed length field brings
    # the overflow problem back — exactly the section 4 judgment.
    cdbs = matrix.row("cdbs").grades
    assert cdbs[Property.PERSISTENT_LABELS] is Compliance.FULL
    assert cdbs[Property.OVERFLOW_FREEDOM] is Compliance.NONE
    assert cdbs[Property.ORTHOGONALITY] is Compliance.FULL

    # Prime: ancestor-by-divisibility works, but SC renumbering on
    # updates costs persistence — the known weakness.
    prime = matrix.row("prime").grades
    assert prime[Property.PERSISTENT_LABELS] is Compliance.NONE
    assert prime[Property.XPATH_EVALUATION] is Compliance.FULL

    # Cohen: excluded from Figure 7 because middle insertion relabels.
    cohen = matrix.row("cohen").grades
    assert cohen[Property.PERSISTENT_LABELS] is Compliance.NONE

    # Com-D inherits LSDX's profile.
    comd = matrix.row("comd").grades
    lsdx = matrix.row("lsdx").grades
    assert comd == lsdx


def main(argv=None):
    bench_args(__doc__, argv)  # probe suite is constant-sized
    matrix = regenerate()
    print(matrix.render())
    return [
        {
            "scheme": row.name,
            "extension": row.extension,
            "grades": {prop.name: grade.value
                       for prop, grade in row.grades.items()},
        }
        for row in matrix.rows
    ]


if __name__ == "__main__":
    main()
