"""Run every benchmark's report and print one consolidated document.

The one-command regeneration of everything the paper shows::

    python benchmarks/run_all.py            # all figures + claims
    python benchmarks/run_all.py figure     # only the figure reproductions
    python benchmarks/run_all.py claim      # only the textual-claim checks
    python benchmarks/run_all.py --quick    # CI-sized workloads

Each section is the ``main()`` of one ``bench_*`` module — the same code
``pytest benchmarks/ --benchmark-only`` times and asserts, and the same
sections ``python -m repro bench run`` wraps in the telemetry harness.
A section that raises no longer aborts the run: the failure (name,
exception, traceback tail) is recorded, the remaining sections still
print, and the process exits non-zero at the end.
"""

from __future__ import annotations

import argparse
import importlib
import os
import sys
import time
import traceback

#: Report order: the paper's figures first, then its claims, then the
#: extension experiments (including the engine benchmarks added by the
#: batch-update and durability PRs).
SECTIONS = [
    ("figure", "bench_figure1_prepost"),
    ("figure", "bench_figure2_encoding"),
    ("figure", "bench_figure3_dewey"),
    ("figure", "bench_figure4_ordpath"),
    ("figure", "bench_figure5_lsdx"),
    ("figure", "bench_figure6_improved_binary"),
    ("figure", "bench_figure7_matrix"),
    ("claim", "bench_claim_skewed_growth"),
    ("claim", "bench_claim_overflow"),
    ("claim", "bench_claim_containment_gaps"),
    ("claim", "bench_claim_lsdx_collisions"),
    ("claim", "bench_update_cost"),
    ("claim", "bench_storage_growth"),
    ("extension", "bench_extended_matrix"),
    ("extension", "bench_ablation_code_design"),
    ("extension", "bench_codec_storage"),
    ("extension", "bench_structural_join"),
    ("extension", "bench_twig_queries"),
    ("extension", "bench_plane_queries"),
    ("extension", "bench_accelerator"),
    ("extension", "bench_xmark_auctions"),
    ("extension", "bench_query_axes"),
    ("extension", "bench_batch_updates"),
    ("extension", "bench_durability"),
    ("extension", "bench_ulang"),
]

KINDS = ("figure", "claim", "extension")


def run_section(module_name: str, argv):
    """Import and run one section; return (rows, failure-or-None)."""
    try:
        module = importlib.import_module(module_name)
        return module.main(argv), None
    except (Exception, SystemExit) as error:
        tail = traceback.format_exception(type(error), error,
                                          error.__traceback__)
        return None, {
            "section": module_name,
            "type": type(error).__name__,
            "message": str(error),
            "traceback_tail": [line.rstrip("\n") for line in tail[-4:]],
        }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description=__doc__.splitlines()[0]
    )
    parser.add_argument("kinds", nargs="*", metavar="kind",
                        help="restrict to report kinds: figure, claim, "
                             "extension (default: all)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized workloads in every section")
    args = parser.parse_args(sys.argv[1:] if argv is None else argv)
    unknown = [kind for kind in args.kinds if kind not in KINDS]
    if unknown:
        parser.error(f"unknown kind(s): {', '.join(unknown)} "
                     f"(choose from {', '.join(KINDS)})")
    wanted = set(args.kinds) if args.kinds else set(KINDS)
    section_argv = ["--quick"] if args.quick else []
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    started = time.perf_counter()
    count = 0
    failures = []
    for kind, module_name in SECTIONS:
        if kind not in wanted:
            continue
        banner = f"  {module_name}  ({kind})  "
        print("=" * len(banner))
        print(banner)
        print("=" * len(banner))
        _rows, failure = run_section(module_name, section_argv)
        if failure is not None:
            failures.append(failure)
            print(f"!! section failed: {failure['type']}: "
                  f"{failure['message']}")
            for line in failure["traceback_tail"]:
                print(f"   {line}")
        print()
        count += 1
    elapsed = time.perf_counter() - started
    print(f"-- regenerated {count} reports in {elapsed:.1f} s")
    if failures:
        print(f"-- {len(failures)} section(s) FAILED: "
              + ", ".join(failure["section"] for failure in failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
