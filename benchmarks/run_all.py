"""Run every benchmark's report and print one consolidated document.

The one-command regeneration of everything the paper shows::

    python benchmarks/run_all.py            # all figures + claims
    python benchmarks/run_all.py figure     # only the figure reproductions
    python benchmarks/run_all.py claim      # only the textual-claim checks

Each section is the ``main()`` of one ``bench_*`` module — the same code
``pytest benchmarks/ --benchmark-only`` times and asserts.
"""

from __future__ import annotations

import importlib
import os
import sys
import time

#: Report order: the paper's figures first, then its claims, then the
#: extension experiments.
SECTIONS = [
    ("figure", "bench_figure1_prepost"),
    ("figure", "bench_figure2_encoding"),
    ("figure", "bench_figure3_dewey"),
    ("figure", "bench_figure4_ordpath"),
    ("figure", "bench_figure5_lsdx"),
    ("figure", "bench_figure6_improved_binary"),
    ("figure", "bench_figure7_matrix"),
    ("claim", "bench_claim_skewed_growth"),
    ("claim", "bench_claim_overflow"),
    ("claim", "bench_claim_containment_gaps"),
    ("claim", "bench_claim_lsdx_collisions"),
    ("claim", "bench_update_cost"),
    ("claim", "bench_storage_growth"),
    ("extension", "bench_extended_matrix"),
    ("extension", "bench_ablation_code_design"),
    ("extension", "bench_codec_storage"),
    ("extension", "bench_structural_join"),
    ("extension", "bench_twig_queries"),
    ("extension", "bench_plane_queries"),
    ("extension", "bench_xmark_auctions"),
    ("extension", "bench_query_axes"),
]


def main(argv=None) -> int:
    arguments = sys.argv[1:] if argv is None else argv
    wanted = set(arguments) if arguments else {"figure", "claim", "extension"}
    sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
    started = time.perf_counter()
    count = 0
    for kind, module_name in SECTIONS:
        if kind not in wanted:
            continue
        banner = f"  {module_name}  ({kind})  "
        print("=" * len(banner))
        print(banner)
        print("=" * len(banner))
        module = importlib.import_module(module_name)
        module.main()
        print()
        count += 1
    elapsed = time.perf_counter() - started
    print(f"-- regenerated {count} reports in {elapsed:.1f} s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
