"""Index-backed axis steps vs label scans, and splices vs rebuilds.

Two claims behind ROADMAP item 2, measured on XMark documents:

* **query**: with an :class:`~repro.axes.accelerator.AxisAccelerator`
  attached, descendant/following/preceding steps are window range
  scans — on a 50k-node document they must beat the
  ``_filter_by_label`` full scan by >=5x;
* **maintenance**: keeping the index current through the structural
  delta stream (positional splices) must beat rebuilding it after
  every update, on a mixed insert/delete/move workload.

Equality with the scan path is asserted on every timed query, so the
speedup rows can never come from wrong answers.
"""

import time

from _common import bench_args
from repro.axes.accelerator import AxisAccelerator
from repro.axes.evaluator import AxisEvaluator
from repro.schemes.registry import make_scheme
from repro.updates.document import LabeledDocument
from repro.xmlmodel.xmark import xmark_document

#: scale 85 ~= 51k labelled nodes (the acceptance floor is 50k).
FULL_SCALE = 85
QUICK_SCALE = 2

TIMED_AXES = ("descendant", "following", "preceding")
EXTRA_AXES = ("ancestor", "following-sibling", "preceding-sibling")


def build(scale):
    document = xmark_document(scale=scale, seed=11)
    ldoc = LabeledDocument(document, make_scheme("dewey"))
    return ldoc, AxisAccelerator(ldoc)


def sample_contexts(document, count):
    """Elements spread through the document: mixed depths and sizes."""
    elements = [
        node for node in document.labeled_nodes() if node.is_element
    ]
    step = max(1, len(elements) // count)
    return elements[::step][:count]


def ids(nodes):
    return [node.node_id for node in nodes]


def bench_axis_steps(scale, contexts_count):
    ldoc, accelerator = build(scale)
    scan = AxisEvaluator(ldoc, allow_fallback=True)
    fast = AxisEvaluator(ldoc, allow_fallback=True, accelerator=accelerator)
    contexts = sample_contexts(ldoc.document, contexts_count)
    rows = []
    for axis in TIMED_AXES + EXTRA_AXES:
        start = time.perf_counter()
        scan_results = [scan.evaluate(axis, node) for node in contexts]
        scan_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        fast_results = [fast.evaluate(axis, node) for node in contexts]
        fast_ms = (time.perf_counter() - start) * 1000
        for expected, got in zip(scan_results, fast_results):
            assert ids(expected) == ids(got)
        speedup = scan_ms / fast_ms if fast_ms else float("inf")
        rows.append({
            "workload": "axis-step",
            "axis": axis,
            "nodes": ldoc.document.labeled_size(),
            "contexts": len(contexts),
            "scan_ms": round(scan_ms, 3),
            "accelerated_ms": round(fast_ms, 3),
            "speedup": round(speedup, 1),
        })
        print(f"{axis:18s} scan={scan_ms:9.1f} ms  "
              f"accelerated={fast_ms:7.1f} ms  ({speedup:6.1f}x, "
              f"{len(contexts)} contexts)")
    return rows


def run_update_workload(ldoc, per_update):
    """A deterministic mixed workload: inserts, deletes, one move each."""
    root = ldoc.document.root
    region = next(
        node for node in root.labeled_children() if node.is_element
    )
    inserted = []
    updates = 0
    index = 0
    while True:
        fresh = ldoc.updates.append_child(region, f"claim{index}").node
        inserted.append(fresh)
        updates += 1
        per_update()
        if updates >= UPDATE_BUDGET:
            break
        sibling = ldoc.updates.insert_after(fresh, f"probe{index}").node
        inserted.append(sibling)
        updates += 1
        per_update()
        if updates >= UPDATE_BUDGET:
            break
        if len(inserted) >= 3:
            ldoc.updates.delete(inserted.pop(0))
            updates += 1
            per_update()
            if updates >= UPDATE_BUDGET:
                break
        ldoc.updates.move(inserted[-1], root, len(root.attributes()))
        inserted[-1:] = []
        updates += 1
        per_update()
        if updates >= UPDATE_BUDGET:
            break
        index += 1
    return updates


def bench_maintenance(scale):
    """Incremental (delta splices) vs rebuild-per-update, same workload."""
    probe_axis = "descendant"

    # Incremental: attached accelerator consumes deltas; each update is
    # followed by one accelerated query (the serving pattern).
    ldoc, accelerator = build(scale)
    fast = AxisEvaluator(ldoc, allow_fallback=True, accelerator=accelerator)
    context = ldoc.document.root
    start = time.perf_counter()
    updates = run_update_workload(
        ldoc, lambda: fast.evaluate(probe_axis, context)
    )
    incremental_ms = (time.perf_counter() - start) * 1000

    # Rebuild-per-update: a detached index must refresh() before each
    # post-update query or raise StaleIndexError.
    ldoc2, accelerator2 = build(scale)
    accelerator2.detach()
    fast2 = AxisEvaluator(ldoc2, allow_fallback=True,
                          accelerator=accelerator2)
    context2 = ldoc2.document.root

    def refresh_and_query():
        accelerator2.refresh()
        fast2.evaluate(probe_axis, context2)

    start = time.perf_counter()
    run_update_workload(ldoc2, refresh_and_query)
    rebuild_ms = (time.perf_counter() - start) * 1000

    # Both strategies answer identically at the end — against the scan.
    scan = AxisEvaluator(ldoc, allow_fallback=True)
    assert ids(scan.evaluate(probe_axis, context)) == ids(
        fast.evaluate(probe_axis, context)
    )
    assert ids(fast.evaluate(probe_axis, context)) == ids(
        fast2.evaluate(probe_axis, context2)
    )

    advantage = rebuild_ms / incremental_ms if incremental_ms else float("inf")
    print(f"maintenance        incremental={incremental_ms:9.1f} ms  "
          f"rebuild-per-update={rebuild_ms:9.1f} ms  ({advantage:5.1f}x, "
          f"{updates} updates)")
    return [{
        "workload": "maintenance",
        "nodes": ldoc.document.labeled_size(),
        "updates": updates,
        "incremental_ms": round(incremental_ms, 3),
        "rebuild_per_update_ms": round(rebuild_ms, 3),
        "advantage": round(advantage, 1),
    }]


# -- pytest-benchmark entries (quick sizes) -----------------------------


def bench_accelerated_descendant_step(benchmark):
    ldoc, accelerator = build(QUICK_SCALE)
    fast = AxisEvaluator(ldoc, accelerator=accelerator)
    result = benchmark(fast.evaluate, "descendant", ldoc.document.root)
    assert result


def bench_scan_descendant_step(benchmark):
    ldoc, _accelerator = build(QUICK_SCALE)
    scan = AxisEvaluator(ldoc, allow_fallback=True)
    result = benchmark(scan.evaluate, "descendant", ldoc.document.root)
    assert result


def bench_insert_splice(benchmark):
    ldoc, accelerator = build(QUICK_SCALE)
    region = next(
        node for node in ldoc.document.root.labeled_children()
        if node.is_element
    )

    def insert():
        ldoc.updates.append_child(region, "spliced")
        return accelerator.stale

    assert benchmark(insert) is False


def main(argv=None):
    global UPDATE_BUDGET

    args = bench_args(__doc__, argv)
    scale = QUICK_SCALE if args.quick else FULL_SCALE
    contexts = 6 if args.quick else 20
    UPDATE_BUDGET = 12 if args.quick else 60
    rows = bench_axis_steps(scale, contexts)
    rows.extend(bench_maintenance(scale))
    if not args.quick:
        for row in rows:
            if row["workload"] == "axis-step" and row["axis"] in TIMED_AXES:
                assert row["nodes"] >= 50_000, row
                assert row["speedup"] >= 5.0, row
            if row["workload"] == "maintenance":
                assert row["advantage"] > 1.0, row
    return rows


UPDATE_BUDGET = 60

if __name__ == "__main__":
    main()
