"""Durability costs: journal append overhead and recovery throughput.

A write-ahead journal buys crash recovery with two new costs: every
update pays an append (whose price depends on the sync policy) and a
crashed process pays a replay.  This benchmark prices both:

* **append overhead** — the same insertion workload run bare and run
  inside journalled transactions, once per sync policy (``never``,
  ``commit``, ``always``), reporting microseconds per operation and the
  overhead factor over the bare path;
* **recovery throughput** — journals of increasing committed-operation
  counts replayed with :func:`repro.durability.journal.recover`,
  reporting operations replayed per second and verifying the recovered
  document is bit-identical (via the label codecs) to the live one.

Run standalone (``python benchmarks/bench_durability.py [--quick]``) or
under pytest, where the assertions guard the claims: recovery
reproduces the exact label stream, and the ``never`` policy is not
slower than ``always`` (fsync is the dominant cost it omits).
"""

from __future__ import annotations

import os
import tempfile
import time

from _common import bench_args, fresh
from repro.durability.journal import SYNC_POLICIES, Journal, recover
from repro.encoding.codec import codec_for
from repro.xmlmodel.generator import random_document

FULL_OPS = 600
QUICK_OPS = 60
FULL_RECOVERY_SIZES = [100, 400, 800]
QUICK_RECOVERY_SIZES = [20, 60]

SCHEME = "cdqs"  # persistent: journalling cost is not masked by relabelling


def _journal_path() -> str:
    handle, path = tempfile.mkstemp(suffix=".journal")
    os.close(handle)
    os.remove(path)
    return path


def _fingerprint(ldoc) -> bytes:
    stream, _bits = codec_for(ldoc.scheme).encode_labels(
        ldoc.labels_in_document_order()
    )
    return stream


def _workload(txn_or_updates, root, ops: int) -> None:
    for index in range(ops):
        txn_or_updates.append_child(root, f"n{index}")


def run_append_overhead(ops: int):
    """Bare per-op inserts vs journalled transactions, per sync policy."""
    records = []

    ldoc = fresh(SCHEME, random_document(200, seed=11))
    started = time.perf_counter()
    _workload(ldoc.updates, ldoc.document.root, ops)
    bare = time.perf_counter() - started
    records.append({"policy": "(none)", "secs": bare, "ops": ops})

    for policy in SYNC_POLICIES:
        ldoc = fresh(SCHEME, random_document(200, seed=11))
        path = _journal_path()
        try:
            with Journal.create(path, ldoc, sync=policy) as journal:
                started = time.perf_counter()
                with ldoc.transaction(journal=journal) as txn:
                    _workload(txn, ldoc.document.root, ops)
                elapsed = time.perf_counter() - started
        finally:
            os.remove(path)
        records.append({"policy": policy, "secs": elapsed, "ops": ops})
    return records


def run_recovery_throughput(sizes):
    """Replay journals of growing size; verify bit-identical labels."""
    records = []
    for ops in sizes:
        ldoc = fresh(SCHEME, random_document(100, seed=7))
        path = _journal_path()
        try:
            with Journal.create(path, ldoc, sync="never") as journal:
                with ldoc.transaction(journal=journal) as txn:
                    _workload(txn, ldoc.document.root, ops)
            started = time.perf_counter()
            result = recover(path)
            elapsed = time.perf_counter() - started
        finally:
            os.remove(path)
        records.append({
            "ops": ops,
            "secs": elapsed,
            "replayed": result.operations_applied,
            "identical": _fingerprint(result.ldoc) == _fingerprint(ldoc),
        })
    return records


def check_append(records) -> None:
    by_policy = {record["policy"]: record for record in records}
    # fsync-per-append must not beat no-sync on the same workload.
    assert by_policy["never"]["secs"] <= by_policy["always"]["secs"] * 2, \
        records


def check_recovery(records) -> None:
    for record in records:
        assert record["identical"], record
        assert record["replayed"] == record["ops"], record


# ----------------------------------------------------------------------
# pytest entry points (quick sizes keep the suite fast)
# ----------------------------------------------------------------------

def bench_journal_append_overhead(benchmark):
    """Journalled transactions price each op at a bounded append cost."""
    records = benchmark.pedantic(
        lambda: run_append_overhead(QUICK_OPS), rounds=1, iterations=1
    )
    check_append(records)


def bench_recovery_throughput(benchmark):
    """Replay reconstructs the exact label stream at useful speed."""
    records = benchmark.pedantic(
        lambda: run_recovery_throughput(QUICK_RECOVERY_SIZES),
        rounds=1, iterations=1,
    )
    check_recovery(records)


# ----------------------------------------------------------------------
# standalone report
# ----------------------------------------------------------------------

def main(argv=None):
    args = bench_args(__doc__, argv)
    ops = QUICK_OPS if args.quick else FULL_OPS
    sizes = QUICK_RECOVERY_SIZES if args.quick else FULL_RECOVERY_SIZES

    append_records = run_append_overhead(ops)
    bare = append_records[0]["secs"]
    print(f"Journal append overhead ({ops} appends, scheme {SCHEME})")
    print(f"  {'sync policy':12s} {'total s':>9s} {'us/op':>8s} "
          f"{'overhead':>9s}")
    for record in append_records:
        per_op = record["secs"] / record["ops"] * 1e6
        factor = record["secs"] / bare if bare else float("inf")
        print(f"  {record['policy']:12s} {record['secs']:9.3f} "
              f"{per_op:8.1f} {factor:8.1f}x")
    check_append(append_records)

    recovery_records = run_recovery_throughput(sizes)
    print()
    print("Recovery throughput (committed ops replayed from journal)")
    print(f"  {'ops':>6s} {'replay s':>9s} {'ops/s':>9s} {'identical':>10s}")
    for record in recovery_records:
        rate = record["replayed"] / record["secs"] if record["secs"] else 0
        print(f"  {record['ops']:6d} {record['secs']:9.3f} "
              f"{rate:9.0f} {str(record['identical']):>10s}")
    check_recovery(recovery_records)

    print("\nall recovered documents bit-identical to the live state; "
          "claims hold")
    return ([{"phase": "append_overhead", **record}
             for record in append_records]
            + [{"phase": "recovery", **record}
               for record in recovery_records])


if __name__ == "__main__":
    main()
