"""Pytest fixtures for the benchmark harness.

Every ``bench_*`` file regenerates one table or figure of the paper (or
one textual claim from its analysis) and is also runnable directly
(``python benchmarks/bench_figure7_matrix.py``) to print the regenerated
artifact.  Under ``pytest benchmarks/ --benchmark-only`` the same code is
timed and its assertions guard the reproduction.  Shared helpers live in
``_common.py`` so the scripts import them identically under pytest and
standalone execution.
"""

import pytest

from repro.data.sample import sample_document


@pytest.fixture
def sample():
    return sample_document()
