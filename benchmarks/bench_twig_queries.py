"""Twig (branching pattern) queries over labels, across schemes.

Pattern matching is the query workload the survey's introduction
motivates ("efficient XML query pattern matching", reference [1]); twig
patterns are its general form.  This bench matches a branching pattern
over the same document under three schemes and checks the label-only
matcher against the XPath-with-predicates evaluator.
"""

import pytest

from _common import bench_args, fresh
from repro.axes.xpath import xpath
from repro.store.twig import TwigMatcher, child, descendant, twig
from repro.xmlmodel.generator import GeneratorProfile, random_document

DOCUMENT_NODES = 400

PATTERN = twig("record", child("name"), descendant("entry"))
EQUIVALENT_XPATH = "//record[name][.//entry]"


def build(scheme_name):
    return fresh(
        scheme_name,
        random_document(
            DOCUMENT_NODES, seed=41, profile=GeneratorProfile.bibliography()
        ),
    )


@pytest.mark.parametrize("scheme_name", ["qed", "dewey", "prepost"])
def bench_twig_match(benchmark, scheme_name):
    ldoc = build(scheme_name)
    matcher = TwigMatcher(ldoc, allow_fallback=True)
    matcher.indexes.refresh()  # prebuild: measure matching, not indexing

    result = benchmark(matcher.match, PATTERN)
    assert isinstance(result, list)


def bench_twig_agrees_across_schemes(benchmark):
    def check():
        reference = None
        for scheme_name in ("qed", "dewey", "vector"):
            ldoc = build(scheme_name)
            matcher = TwigMatcher(ldoc, allow_fallback=True)
            ids = [n.node_id for n in matcher.match(PATTERN)]
            if reference is None:
                reference = ids
            assert ids == reference
        return len(reference)

    count = benchmark.pedantic(check, rounds=1, iterations=1)
    assert count >= 0


def bench_twig_matches_xpath_predicates(benchmark):
    def check():
        ldoc = build("qed")
        matcher = TwigMatcher(ldoc)
        # The pattern without the descendant branch maps onto our XPath
        # predicate subset exactly.
        simple = twig("record", child("name"))
        twig_ids = [n.node_id for n in matcher.match(simple)]
        xpath_ids = [n.node_id for n in xpath(ldoc, "//record[name]")]
        assert twig_ids == xpath_ids
        return len(twig_ids)

    benchmark.pedantic(check, rounds=1, iterations=1)


def main(argv=None):
    bench_args(__doc__, argv)  # pattern match is already CI-sized
    rows = []
    for scheme_name in ("qed", "dewey", "prepost"):
        ldoc = build(scheme_name)
        matcher = TwigMatcher(ldoc, allow_fallback=True)
        matches = matcher.match(PATTERN)
        print(f"{scheme_name:8s} record[name][.//entry] -> "
              f"{len(matches)} matches")
        rows.append({"scheme": scheme_name, "pattern": EQUIVALENT_XPATH,
                     "matches": len(matches)})
    return rows


if __name__ == "__main__":
    main()
