"""Section 4 claim: the overflow problem and who escapes it.

Fixed-length schemes overflow "once all the assigned bits have been
consumed"; variable-length schemes overflow their size field; QED, CDQS
and the vector scheme never relabel.  This bench drives every scheme
through the same high-pressure one-position insertion run against tight
storage fields and tabulates relabel/overflow events.
"""

from _common import bench_args, fresh
from repro.core.probes import TIGHT_STORAGE
from repro.schemes.registry import FIGURE7_ORDER
from repro.updates.workloads import prepend_insertions, skewed_insertions

PRESSURE = 150

#: Figure 7 Overflow Prob. column: the schemes that escape.
OVERFLOW_FREE = {"qed", "cdqs", "vector"}


def run_one(name):
    ldoc = fresh(name, **TIGHT_STORAGE.get(name, {}))
    skewed_insertions(ldoc, PRESSURE)
    prepend_insertions(ldoc, PRESSURE)
    return {
        "relabel_events": ldoc.log.relabel_events,
        "relabeled_nodes": ldoc.log.relabeled_nodes,
        "overflow_events": ldoc.log.overflow_events,
    }


def regenerate():
    return {name: run_one(name) for name in FIGURE7_ORDER}


def bench_overflow_pressure_all_schemes(benchmark):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for name, stats in table.items():
        if name in OVERFLOW_FREE:
            assert stats["relabel_events"] == 0, (name, stats)
            assert stats["overflow_events"] == 0, (name, stats)
        else:
            assert stats["relabel_events"] >= 1, (name, stats)


def bench_qed_under_pressure(benchmark):
    """The overflow-free fast path, timed in isolation."""
    stats = benchmark(run_one, "qed")
    assert stats["relabel_events"] == 0


def bench_dln_under_pressure(benchmark):
    """A fixed-length victim, timed in isolation."""
    stats = benchmark(run_one, "dln")
    assert stats["overflow_events"] >= 1


def main(argv=None):
    bench_args(__doc__, argv)  # pressure run is already CI-sized
    table = regenerate()
    print(f"Overflow pressure: {2 * PRESSURE} one-sided insertions, "
          "tight storage fields")
    print(f"{'scheme':18s} {'relabels':>9s} {'nodes moved':>12s} "
          f"{'overflows':>10s}  escapes?")
    rows = []
    for name, stats in table.items():
        escapes = stats["relabel_events"] == 0
        print(f"{name:18s} {stats['relabel_events']:9d} "
              f"{stats['relabeled_nodes']:12d} "
              f"{stats['overflow_events']:10d}  "
              f"{'yes' if escapes else 'no'}")
        rows.append({"scheme": name, "escapes": escapes, **stats})
    return rows


if __name__ == "__main__":
    main()
