"""Section 5 claim: vector label growth under skew is much slower than QED.

"under skewed insertions (frequent insertions at a fixed position), the
vector label growth rate is much slower than QED under similar
conditions" — regenerated as a growth series over identical inputs, with
ImprovedBinary and CDQS alongside for the string-scheme baseline.
"""

from _common import bench_args
from repro.analysis.growth import (
    growth_table,
    linearity_ratio,
    render_growth_table,
    skewed_growth_series,
)

SCHEMES = ["qed", "cdqs", "improved-binary", "vector"]
INSERTS = 240
QUICK_INSERTS = 80
STEP = 40


def regenerate(inserts=INSERTS):
    return growth_table(SCHEMES, inserts, step=STEP)


def bench_skewed_growth_series(benchmark):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    rates = {name: linearity_ratio(series) for name, series in table.items()}
    # The string schemes grow about a bit (or two) per insertion...
    assert rates["qed"] >= 0.5
    assert rates["cdqs"] >= 0.5
    assert rates["improved-binary"] >= 0.5
    # ...while the vector frontier is flat on this scale.
    assert rates["vector"] <= 0.2
    # And the absolute frontier separation is large ("much slower").
    assert table["vector"][-1].frontier_bits * 3 < table["qed"][-1].frontier_bits


def bench_vector_insertion_throughput(benchmark):
    """Update-cost side of the claim: one skewed vector insertion."""
    def run():
        return skewed_growth_series("vector", 64, step=64)

    series = benchmark(run)
    assert series[-1].relabeled_nodes == 0


def bench_qed_insertion_throughput(benchmark):
    def run():
        return skewed_growth_series("qed", 64, step=64)

    series = benchmark(run)
    assert series[-1].relabeled_nodes == 0


def main(argv=None):
    args = bench_args(__doc__, argv)
    table = regenerate(QUICK_INSERTS if args.quick else INSERTS)
    print("Skewed insertion growth (frontier label bits)")
    print(render_growth_table(table))
    print()
    rows = []
    for name, series in table.items():
        rate = linearity_ratio(series)
        print(f"  {name:16s} bits/insert = {rate:.3f}")
        rows.append({"scheme": name,
                     "bits_per_insert": round(rate, 3),
                     "frontier_bits": series[-1].frontier_bits})
    return rows


if __name__ == "__main__":
    main()
