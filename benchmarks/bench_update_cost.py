"""Update processing cost across schemes (section 3.1 / section 5).

Times one insertion under each scheme and tabulates the relabelling bill
per workload — the cost asymmetry between the persistent schemes
(ORDPATH, ImprovedBinary, QED, CDQS, Vector: zero nodes moved) and the
relabelling schemes (preorder/postorder moves nearly everything).
"""

import pytest

from _common import bench_args, fresh
from repro.schemes.registry import FIGURE7_ORDER
from repro.updates.workloads import random_insertions, skewed_insertions
from repro.xmlmodel.generator import random_document

PERSISTENT = {"ordpath", "improved-binary", "qed", "cdqs", "vector"}
DOCUMENT_NODES = 200
INSERTS = 40
QUICK_INSERTS = 15


def build(scheme_name):
    return fresh(scheme_name, random_document(DOCUMENT_NODES, seed=99))


@pytest.mark.parametrize("scheme_name", [
    "prepost", "dewey", "ordpath", "qed", "cdqs", "vector",
])
def bench_single_append(benchmark, scheme_name):
    """Cost of appending one element at the root, per scheme.

    Each round gets a fresh labelled document so the measured insertion
    always runs against the same 200-node state (a growing document
    would make later rounds quadratically slower, especially for the
    relabelling schemes).
    """
    def setup():
        ldoc = build(scheme_name)
        return (ldoc, ldoc.document.root), {}

    def append_one(ldoc, root):
        ldoc.append_child(root, "bench")
        return ldoc

    ldoc = benchmark.pedantic(append_one, setup=setup, rounds=10)
    if scheme_name in PERSISTENT:
        assert ldoc.log.relabeled_nodes == 0


def bench_relabel_bill_table(benchmark):
    """Nodes relabelled by 40 random + 40 skewed insertions, per scheme."""
    def regenerate():
        table = {}
        for name in FIGURE7_ORDER:
            ldoc = build(name)
            random_insertions(ldoc, 40, seed=6)
            skewed_insertions(ldoc, 40)
            table[name] = ldoc.log.relabeled_nodes
        return table

    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    for name in PERSISTENT:
        assert table[name] == 0, (name, table[name])
    # Global-order labelling pays the heaviest bill.
    assert table["prepost"] > table["dewey"] > 0


def main(argv=None):
    args = bench_args(__doc__, argv)
    inserts = QUICK_INSERTS if args.quick else INSERTS
    print(f"Relabelled nodes after {inserts} random + {inserts} skewed "
          f"insertions ({DOCUMENT_NODES}-node document)")
    rows = []
    for name in FIGURE7_ORDER:
        ldoc = build(name)
        random_insertions(ldoc, inserts, seed=6)
        skewed_insertions(ldoc, inserts)
        persistent = ldoc.log.relabeled_nodes == 0
        marker = "persistent" if persistent else ""
        print(f"  {name:18s} {ldoc.log.relabeled_nodes:8d}  {marker}")
        rows.append({"scheme": name,
                     "relabeled_nodes": ldoc.log.relabeled_nodes,
                     "persistent": persistent})
    return rows


if __name__ == "__main__":
    main()
