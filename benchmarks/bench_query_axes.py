"""Section 2.2 claim: label-decidable relationships cut XPath costs.

Times axis evaluation over the label table for schemes at each XPath
Evaluations grade — full prefix schemes answer every axis from labels,
containment schemes answer ancestor/descendant, and the fallback path
(tree navigation) is what the partial schemes pay elsewhere.
"""

import pytest

from _common import bench_args, fresh
from repro.axes.evaluator import AxisEvaluator
from repro.axes.xpath import XPathEvaluator
from repro.xmlmodel.generator import random_document

DOCUMENT_NODES = 150


def build(scheme_name):
    return fresh(scheme_name, random_document(DOCUMENT_NODES, seed=88))


@pytest.mark.parametrize("scheme_name", ["qed", "dewey", "prepost", "vector"])
def bench_descendant_axis(benchmark, scheme_name):
    """Ancestor-descendant: decidable from labels for every graded row."""
    ldoc = build(scheme_name)
    evaluator = AxisEvaluator(ldoc, allow_fallback=True)
    root = ldoc.document.root

    result = benchmark(evaluator.evaluate, "descendant", root)
    assert len(result) == ldoc.document.labeled_size() - 1


@pytest.mark.parametrize("scheme_name", ["qed", "dewey"])
def bench_sibling_axis_label_only(benchmark, scheme_name):
    """Sibling axes: only XPath-F schemes answer without the tree."""
    ldoc = build(scheme_name)
    evaluator = AxisEvaluator(ldoc, allow_fallback=False)
    node = ldoc.document.root.element_children()[0]

    benchmark(evaluator.evaluate, "following-sibling", node)
    assert evaluator.fallbacks == 0


def bench_vector_sibling_axis_needs_fallback(benchmark):
    ldoc = build("vector")
    evaluator = AxisEvaluator(ldoc, allow_fallback=True)
    node = ldoc.document.root.element_children()[0]

    benchmark(evaluator.evaluate, "following-sibling", node)
    assert evaluator.fallbacks > 0


@pytest.mark.parametrize("scheme_name", ["qed", "prepost"])
def bench_xpath_location_path(benchmark, scheme_name):
    """A whole location path over the labelled document."""
    ldoc = build(scheme_name)
    evaluator = XPathEvaluator(ldoc)

    result = benchmark(evaluator.evaluate, "//record/ancestor::*")
    assert isinstance(result, list)


def main(argv=None):
    import time

    args = bench_args(__doc__, argv)
    contexts = 10 if args.quick else 30
    print(f"Axis evaluation over a {DOCUMENT_NODES}-node document")
    rows = []
    for scheme_name in ("qed", "dewey", "prepost", "vector"):
        ldoc = build(scheme_name)
        evaluator = AxisEvaluator(ldoc, allow_fallback=True)
        start = time.perf_counter()
        for node in list(ldoc.document.labeled_nodes())[:contexts]:
            evaluator.evaluate("descendant", node)
            evaluator.evaluate("ancestor", node)
        elapsed = (time.perf_counter() - start) * 1000
        print(f"  {scheme_name:10s} {2 * contexts} axis evaluations: "
              f"{elapsed:7.1f} ms (fallbacks: {evaluator.fallbacks})")
        rows.append({"scheme": scheme_name, "evaluations": 2 * contexts,
                     "elapsed_ms": round(elapsed, 3),
                     "fallbacks": evaluator.fallbacks})

    # Flight-recorder overhead: the same workload bare vs. with the
    # sampling profiler already running at the default rate (the
    # steady-state cost a soak run pays — lifecycle excluded, as the
    # recorder starts once, not per operation).  Each pair times a
    # bare min-of-3 and a profiled min-of-3 back to back so
    # machine-load drift cancels within the pair; the reported
    # overhead is the median of the per-pair ratios, which a single
    # noisy pair cannot skew.
    from repro.observability.profiler import DEFAULT_HERTZ, SamplingProfiler

    ldoc = build("qed")
    evaluator = AxisEvaluator(ldoc, allow_fallback=True)
    nodes = list(ldoc.document.labeled_nodes())[:contexts]

    def workload():
        for _ in range(20):
            for node in nodes:
                evaluator.evaluate("descendant", node)
                evaluator.evaluate("ancestor", node)

    def rep():
        start = time.perf_counter()
        workload()
        return (time.perf_counter() - start) * 1000

    profiler = SamplingProfiler(hertz=DEFAULT_HERTZ)
    pairs = []
    for _ in range(5):
        workload()  # untimed warm rep before each timed pair
        bare = min(rep() for _ in range(3))
        profiler.start()
        try:
            workload()  # absorb thread-start perturbation untimed
            pairs.append((bare, min(rep() for _ in range(3))))
        finally:
            profiler.stop()
    pairs.sort(key=lambda pair: pair[1] / pair[0])
    baseline_ms, profiled_ms = pairs[len(pairs) // 2]
    overhead_pct = 100.0 * (profiled_ms - baseline_ms) / max(baseline_ms,
                                                             1e-9)
    print(f"  profiler overhead at {DEFAULT_HERTZ:g} Hz (qed workload): "
          f"bare {baseline_ms:.1f} ms, profiled {profiled_ms:.1f} ms "
          f"({overhead_pct:+.1f}%)")
    rows.append({"scheme": "profiler-overhead",
                 "evaluations": 2 * contexts * 20,
                 "elapsed_ms": round(profiled_ms, 3),
                 "fallbacks": evaluator.fallbacks,
                 "baseline_ms": round(baseline_ms, 3),
                 "overhead_pct": round(overhead_pct, 1)})
    return rows


if __name__ == "__main__":
    main()
