"""Physical label storage: the bit-exact codecs over every scheme.

Encodes the whole label table of one document under each scheme's
storage layout (section 4's fixed-width / length-field / self-delimiting
designs) and reports real bytes — then proves the streams decode back
bit-identically.  This is the storage column of the survey's analysis
with actual bits instead of models.
"""

import pytest

from _common import bench_args, fresh
from repro.encoding.codec import codec_for, supported_codec_schemes
from repro.xmlmodel.generator import random_document

DOCUMENT_NODES = 300


def build(scheme_name):
    ldoc = fresh(scheme_name, random_document(DOCUMENT_NODES, seed=29))
    return ldoc, ldoc.labels_in_document_order()


def regenerate():
    table = {}
    for name in supported_codec_schemes():
        ldoc, labels = build(name)
        codec = codec_for(ldoc.scheme)
        data, bits = codec.encode_labels(labels)
        assert codec.decode_labels(data) == labels
        table[name] = {
            "labels": len(labels),
            "stream_bytes": len(data),
            "payload_bits": bits,
            "bits_per_label": bits / len(labels),
        }
    return table


def bench_codec_encode_all_schemes(benchmark):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    # The self-delimiting quaternary stream is the most compact string
    # layout; fixed 3-word containment labels cost exactly 96 bits each.
    assert table["prepost"]["bits_per_label"] == 96.0
    assert table["cdqs"]["bits_per_label"] < table["improved-binary"][
        "bits_per_label"
    ]


@pytest.mark.parametrize("scheme_name", ["qed", "prepost", "vector"])
def bench_codec_round_trip(benchmark, scheme_name):
    ldoc, labels = build(scheme_name)
    codec = codec_for(ldoc.scheme)

    def round_trip():
        data, _bits = codec.encode_labels(labels)
        return codec.decode_labels(data)

    assert benchmark(round_trip) == labels


def main(argv=None):
    bench_args(__doc__, argv)  # codec sweep is already CI-sized
    table = regenerate()
    print(f"Encoded label streams ({DOCUMENT_NODES}-node document)")
    print(f"{'scheme':17s} {'labels':>6s} {'bytes':>8s} {'bits/label':>11s}")
    rows = []
    for name, stats in sorted(
        table.items(), key=lambda item: item[1]["bits_per_label"]
    ):
        print(f"{name:17s} {stats['labels']:6d} {stats['stream_bytes']:8d} "
              f"{stats['bits_per_label']:11.1f}")
        rows.append({"scheme": name, **stats,
                     "bits_per_label": round(stats["bits_per_label"], 2)})
    return rows


if __name__ == "__main__":
    main()
