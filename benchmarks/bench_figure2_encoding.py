"""Figure 2: the encoding table of the sample document.

Regenerates all ten rows (pre, post, node type, parent, name, value) and
times table construction plus the Definition 2 reconstruction.
"""

from _common import bench_args
from repro.data.sample import FIGURE_2_ROWS, sample_document
from repro.encoding.table import EncodingTable
from repro.schemes.containment.prepost import PrePostScheme


def regenerate():
    table = EncodingTable.from_document(sample_document(), PrePostScheme())
    rows = [
        (
            row.label.pre,
            row.label.post,
            row.node_type,
            None if row.parent_label is None else row.parent_label.pre,
            row.name,
            row.value,
        )
        for row in table
    ]
    return rows, table


def bench_figure2_encoding_table(benchmark):
    rows, table = benchmark(regenerate)
    assert rows == FIGURE_2_ROWS


def bench_figure2_reconstruction(benchmark):
    """Definition 2's closing requirement, timed."""
    _, table = regenerate()
    rebuilt = benchmark(table.reconstruct)
    assert [n.name for n in rebuilt.labeled_nodes()] == [
        row[4] for row in FIGURE_2_ROWS
    ]


def main(argv=None):
    bench_args(__doc__, argv)  # fixed-size reproduction; --quick is a no-op
    rows, table = regenerate()
    print("Figure 2 — encoding of the sample XML file")
    print(table.render())
    matches = rows == FIGURE_2_ROWS
    print("matches paper:", matches)
    return [{"figure": "2", "rows": len(rows), "matches_paper": matches}]


if __name__ == "__main__":
    main()
