"""Figure 4: the ORDPATH-labelled tree, including the three insertions.

The grey nodes of Figure 4 are reproduced by running the published
insertion rules: before-first under 1.1 (gives 1.1.-1), after-last under
1.3 (gives 1.3.3), and careting-in between 1.5.1 and 1.5.3 (gives
1.5.2.1).  No existing node may be relabelled.
"""

from _common import bench_args, fresh
from repro.data.sample import (
    FIGURE_4_INITIAL_ORDPATH_LABELS,
    FIGURE_4_INSERTED,
    figure_tree,
)


def regenerate():
    ldoc = fresh("ordpath", figure_tree())
    initial = [
        ldoc.format_label(node) for node in ldoc.document.labeled_nodes()
    ]
    node_11, node_13, node_15 = ldoc.document.root.element_children()
    inserted = {
        "before_first_under_1.1": ldoc.format_label(
            ldoc.prepend_child(node_11, "new")
        ),
        "after_last_under_1.3": ldoc.format_label(
            ldoc.append_child(node_13, "new")
        ),
        "between_1.5.1_and_1.5.3": ldoc.format_label(
            ldoc.insert_after(node_15.element_children()[0], "new")
        ),
    }
    return initial, inserted, ldoc


def bench_figure4_ordpath(benchmark):
    initial, inserted, ldoc = benchmark(regenerate)
    assert initial == FIGURE_4_INITIAL_ORDPATH_LABELS
    assert inserted == FIGURE_4_INSERTED
    assert ldoc.log.relabeled_nodes == 0


def main(argv=None):
    bench_args(__doc__, argv)  # fixed-size reproduction; --quick is a no-op
    initial, inserted, ldoc = regenerate()
    print("Figure 4 — ORDPATH labelled XML tree")
    print("  initial:", " ".join(initial))
    for description, label in inserted.items():
        print(f"  inserted {description}: {label}")
    print("relabelled existing nodes:", ldoc.log.relabeled_nodes)
    matches = (initial == FIGURE_4_INITIAL_ORDPATH_LABELS
               and inserted == FIGURE_4_INSERTED)
    print("matches paper:", matches)
    return [{"figure": "4", "inserted": dict(inserted),
             "relabeled_nodes": ldoc.log.relabeled_nodes,
             "matches_paper": matches}]


if __name__ == "__main__":
    main()
