"""Figure 6: the ImprovedBinary-labelled tree and its five insertions."""

from _common import bench_args, fresh
from repro.data.sample import (
    FIGURE_6_INITIAL_LABELS,
    FIGURE_6_INSERTED,
    FIGURE_6_SHAPE,
)
from repro.xmlmodel.builder import tree_from_shape


def regenerate():
    ldoc = fresh("improved-binary", tree_from_shape(FIGURE_6_SHAPE))
    initial = [
        ldoc.format_label(node) for node in ldoc.document.labeled_nodes()
    ]
    node_01, node_0101, node_011 = ldoc.document.root.element_children()
    inserted = {
        "before_first_under_0101": ldoc.format_label(
            ldoc.prepend_child(node_0101, "new")
        ),
        "after_last_under_0101": ldoc.format_label(
            ldoc.append_child(node_0101, "new")
        ),
        "between_011.01_and_011.011": ldoc.format_label(
            ldoc.insert_after(node_011.element_children()[0], "new")
        ),
        "between_root_children_01_and_0101": ldoc.format_label(
            ldoc.insert_after(node_01, "new")
        ),
        "between_root_children_0101_and_011": ldoc.format_label(
            ldoc.insert_after(node_0101, "new")
        ),
    }
    return initial, inserted, ldoc


def bench_figure6_improved_binary(benchmark):
    initial, inserted, ldoc = benchmark(regenerate)
    assert initial == FIGURE_6_INITIAL_LABELS
    assert inserted == FIGURE_6_INSERTED
    assert ldoc.log.relabeled_nodes == 0


def main(argv=None):
    bench_args(__doc__, argv)  # fixed-size reproduction; --quick is a no-op
    initial, inserted, ldoc = regenerate()
    print("Figure 6 — ImprovedBinary labelled XML tree")
    print("  initial:", " ".join(repr(code) for code in initial))
    for description, label in inserted.items():
        print(f"  inserted {description}: {label}")
    matches = (initial == FIGURE_6_INITIAL_LABELS
               and inserted == FIGURE_6_INSERTED)
    print("matches paper:", matches)
    return [{"figure": "6", "inserted": dict(inserted),
             "relabeled_nodes": ldoc.log.relabeled_nodes,
             "matches_paper": matches}]


if __name__ == "__main__":
    main()
