"""Update-language throughput and static-analyzer precision.

Two questions, matching the two halves of ``repro.ulang``:

* How fast do programs get from source text to an applied batch?
  (parse / analyze / execute, statements per second)
* How *precise* is the conservative independence analysis?  Soundness
  is guaranteed by the test battery; what the bench tracks is the other
  axis — the fraction of genuinely-independent (program, query) pairs
  the analyzer manages to prove, so precision regressions (a widening
  that starts answering may-conflict everywhere) show up as a number.
"""

from __future__ import annotations

import time

from _common import bench_args, fresh
from repro.ulang import check_program, parse_program, run_program
from repro.xmlmodel.parser import parse

WIDTH = 64


def workload_document():
    xml = "".join(f"<item idx='{i}'><v>{i}</v></item>" for i in range(WIDTH))
    return parse(f"<root>{xml}</root>")


PROGRAMS = [
    "insert <entry year='2024'/> into /root;",
    "delete //item[@idx='3'];",
    "replace value of //item[@idx='5']/v with 'updated';",
    "rename //item as entry; delete //entry[@idx='7'];",
    "move //item[@idx='2'] into /root;",
]

#: (program, query, truly-independent?) — ground truth established by
#: hand; the precision metric is how many of the independent pairs the
#: analyzer proves.
PRECISION_PAIRS = [
    ("delete //a/b;", "//a/b", False),
    ("delete //a/b;", "/r/c/d", True),
    ("delete //a/b;", "//b/c", False),
    ("insert <x/> into /r/a;", "/r/a/x", False),
    ("insert <x/> into /r/a;", "/r/c", True),
    ("replace value of /r/a/b with '1';", "/r/a/b", False),
    ("replace value of /r/a/b with '1';", "/r/a/c", True),
    ("replace value of /r/a/b with '1';", "//a[b='0']", False),
    ("rename //a as z;", "//q/w", True),
    ("rename //a as z;", "//z", False),
    ("move /r/a into /r/c;", "/r/q", True),
    ("move /r/a into /r/c;", "//c/a", False),
]


def throughput(rounds: int):
    ldoc = fresh("ordpath", workload_document())
    statements = sum(len(parse_program(p).statements) for p in PROGRAMS)
    start = time.perf_counter()
    for _ in range(rounds):
        for source in PROGRAMS:
            parse_program(source)
    parse_s = time.perf_counter() - start

    queries = ["//item", "/root/entry", "//item[@idx='9']"]
    programs = [parse_program(p) for p in PROGRAMS]
    start = time.perf_counter()
    for _ in range(rounds):
        for program in programs:
            check_program(program, queries=queries, ldoc=ldoc)
    analyze_s = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(rounds):
        run_program(fresh("ordpath", workload_document()), programs[0])
    execute_s = time.perf_counter() - start

    per_round = statements * rounds
    return [
        {"stage": "parse", "stmt_per_s": round(per_round / parse_s)},
        {"stage": "analyze+verdicts", "stmt_per_s": round(per_round / analyze_s)},
        {"stage": "execute (1 stmt)", "stmt_per_s": round(rounds / execute_s)},
    ]


def precision():
    proved = possible = false_independent = 0
    for program, query, truly_independent in PRECISION_PAIRS:
        report = check_program(program, queries=[query])
        independent = report.verdicts[0].independent
        if truly_independent:
            possible += 1
            proved += independent
        elif independent:
            false_independent += 1
    return {
        "stage": "precision",
        "proved_independent": proved,
        "provable": possible,
        "false_independent": false_independent,
    }


def main(argv=None):
    args = bench_args(__doc__, argv)
    rounds = 20 if args.quick else 200
    rows = throughput(rounds)
    for row in rows:
        print(f"{row['stage']:18s} {row['stmt_per_s']:>10,d} stmt/s")
    quality = precision()
    rows.append(quality)
    print(f"precision          {quality['proved_independent']}/"
          f"{quality['provable']} independent pairs proven, "
          f"{quality['false_independent']} unsound verdicts")
    # Soundness is an invariant, not a statistic: any false independent
    # here means the chain domain widened incorrectly.
    assert quality["false_independent"] == 0
    return rows


if __name__ == "__main__":
    main()
