"""Structural joins (reference [1]): stack-based merge vs nested loop.

The survey's opening motivation is "XML databases capable of processing
queries efficiently"; structural joins over labels are the canonical
query primitive.  This bench verifies the stack-tree join's output
against the nested-loop baseline and times both, over several schemes —
the join code is scheme-agnostic because it only needs ``compare`` and
``is_ancestor`` (section 2.2's label-decidable relationships).
"""

import pytest

from _common import bench_args, fresh
from repro.store.joins import count_join, nested_loop_join, stack_tree_join
from repro.xmlmodel.generator import GeneratorProfile, random_document

DOCUMENT_NODES = 500


def build(scheme_name):
    ldoc = fresh(
        scheme_name,
        random_document(
            DOCUMENT_NODES, seed=7, profile=GeneratorProfile.bibliography()
        ),
    )
    ancestors = [
        (ldoc.label_of(node), node)
        for node in ldoc.document.labeled_nodes()
        if node.name in ("section", "chapter", "record")
    ]
    descendants = [
        (ldoc.label_of(node), node)
        for node in ldoc.document.labeled_nodes()
        if node.is_element and not node.labeled_children()
    ]
    return ldoc, ancestors, descendants


@pytest.mark.parametrize("scheme_name", ["prepost", "qed", "vector"])
def bench_stack_tree_join(benchmark, scheme_name):
    ldoc, ancestors, descendants = build(scheme_name)
    result = benchmark(stack_tree_join, ldoc.scheme, ancestors, descendants)
    assert len(result) == count_join(ldoc.scheme, ancestors, descendants)


@pytest.mark.parametrize("scheme_name", ["prepost"])
def bench_nested_loop_join(benchmark, scheme_name):
    ldoc, ancestors, descendants = build(scheme_name)
    baseline = benchmark(
        nested_loop_join, ldoc.scheme, ancestors, descendants
    )
    merged = stack_tree_join(ldoc.scheme, ancestors, descendants)
    assert sorted(
        (a.node_id, d.node_id) for a, d in baseline
    ) == sorted((a.node_id, d.node_id) for a, d in merged)


def bench_join_comparison_counts(benchmark):
    """The stack join touches far fewer label pairs than nested loop."""
    def measure():
        ldoc, ancestors, descendants = build("prepost")
        ldoc.scheme.instruments.reset()
        stack_tree_join(ldoc.scheme, ancestors, descendants)
        merge_comparisons = ldoc.scheme.instruments.comparisons
        nested_pairs = len(ancestors) * len(descendants)
        return merge_comparisons, nested_pairs

    merge_comparisons, nested_pairs = benchmark.pedantic(
        measure, rounds=1, iterations=1
    )
    assert merge_comparisons < nested_pairs / 4


def main(argv=None):
    import time

    bench_args(__doc__, argv)  # join inputs are already CI-sized
    rows = []
    for scheme_name in ("prepost", "qed", "vector"):
        ldoc, ancestors, descendants = build(scheme_name)
        start = time.perf_counter()
        merged = stack_tree_join(ldoc.scheme, ancestors, descendants)
        merge_ms = (time.perf_counter() - start) * 1000
        start = time.perf_counter()
        nested_loop_join(ldoc.scheme, ancestors, descendants)
        nested_ms = (time.perf_counter() - start) * 1000
        print(f"{scheme_name:10s} |A|={len(ancestors):3d} "
              f"|D|={len(descendants):3d} out={len(merged):4d}  "
              f"stack={merge_ms:6.1f} ms  nested={nested_ms:6.1f} ms")
        rows.append({"scheme": scheme_name, "ancestors": len(ancestors),
                     "descendants": len(descendants), "pairs": len(merged),
                     "stack_ms": round(merge_ms, 3),
                     "nested_ms": round(nested_ms, 3)})
    return rows


if __name__ == "__main__":
    main()
