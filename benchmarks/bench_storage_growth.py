"""Section 5.1 Compact Encoding: storage under the three update scenarios.

Measures total label storage for every Figure 7 scheme over the same
synthetic document, after bulk loading and after each of the frequent
random / frequent uniform / skewed workloads — the measurements behind
the Compact Encoding column.
"""

from _common import bench_args
from repro.analysis.storage import StorageSummary, compare_schemes
from repro.schemes.registry import FIGURE7_ORDER
from repro.updates.workloads import (
    random_insertions,
    skewed_insertions,
    uniform_insertions,
)
from repro.xmlmodel.generator import random_document

DOCUMENT_NODES = 400
QUICK_DOCUMENT_NODES = 150
UPDATES = 100
QUICK_UPDATES = 30


def document_factory(nodes=DOCUMENT_NODES):
    return random_document(nodes, seed=77)


def workloads(updates=UPDATES):
    return {
        "bulk": None,
        "random": lambda ldoc: random_insertions(ldoc, updates, seed=5),
        "uniform": lambda ldoc: uniform_insertions(ldoc, updates),
        "skewed": lambda ldoc: skewed_insertions(ldoc, updates),
    }


#: Full-size workloads, kept for the pytest entry points below.
WORKLOADS = workloads()


def regenerate(nodes=DOCUMENT_NODES, updates=UPDATES):
    table = {}
    for workload_name, workload in workloads(updates).items():
        table[workload_name] = compare_schemes(
            lambda: document_factory(nodes), FIGURE7_ORDER,
            workload=workload,
        )
    return table


def bench_storage_all_workloads(benchmark):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    bulk = table["bulk"]
    # Fixed containment labels are machine-word sized.
    assert bulk["prepost"].bits_per_label == 96
    # Under skew, the vector frontier label stays far below QED's.
    skewed = table["skewed"]
    assert skewed["vector"].max_label_bits < skewed["qed"].max_label_bits
    # CDQS never produces a larger frontier label than QED.
    assert skewed["cdqs"].max_label_bits <= skewed["qed"].max_label_bits


def bench_cdqs_flat_allocation_beats_qed(benchmark):
    """CDQS's compactness claim on sibling allocation, isolated.

    On a flat document (no nesting to compound early-sibling codes) the
    shortest-set allocation is strictly smaller than QED's recursive
    thirds.  On nested documents the comparison depends on which
    siblings carry the deep subtrees — which is why the headline
    workload table above reports both schemes rather than asserting a
    blanket ordering.
    """
    from repro.xmlmodel.builder import wide_tree

    def regenerate_flat():
        return compare_schemes(lambda: wide_tree(300), ["cdqs", "qed"])

    flat = benchmark.pedantic(regenerate_flat, rounds=1, iterations=1)
    assert flat["cdqs"].total_bits <= flat["qed"].total_bits


def bench_bulk_labelling_cost_qed(benchmark):
    document = document_factory()
    from repro.schemes.registry import make_scheme

    scheme = make_scheme("qed")
    labels = benchmark(scheme.label_tree, document)
    assert len(labels) == document.labeled_size()


def bench_bulk_labelling_cost_prepost(benchmark):
    document = document_factory()
    from repro.schemes.registry import make_scheme

    scheme = make_scheme("prepost")
    labels = benchmark(scheme.label_tree, document)
    assert len(labels) == document.labeled_size()


def main(argv=None):
    args = bench_args(__doc__, argv)
    nodes = QUICK_DOCUMENT_NODES if args.quick else DOCUMENT_NODES
    updates = QUICK_UPDATES if args.quick else UPDATES
    table = regenerate(nodes, updates)
    rows = []
    for workload_name, results in table.items():
        print(f"\nStorage after {workload_name} "
              f"({updates if workload_name != 'bulk' else 0} updates)")
        print(f"  {'scheme':18s} {'bits/label':>10s} {'max label':>10s}")
        for name in FIGURE7_ORDER:
            summary: StorageSummary = results[name]
            print(f"  {name:18s} {summary.bits_per_label:10.1f} "
                  f"{summary.max_label_bits:10d}")
            rows.append({"workload": workload_name, "scheme": name,
                         "bits_per_label": round(summary.bits_per_label, 1),
                         "max_label_bits": summary.max_label_bits})
    return rows


if __name__ == "__main__":
    main()
