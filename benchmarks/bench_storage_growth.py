"""Section 5.1 Compact Encoding: storage under the three update scenarios.

Measures total label storage for every Figure 7 scheme over the same
synthetic document, after bulk loading and after each of the frequent
random / frequent uniform / skewed workloads — the measurements behind
the Compact Encoding column.
"""

from repro.analysis.storage import StorageSummary, compare_schemes
from repro.schemes.registry import FIGURE7_ORDER
from repro.updates.workloads import (
    random_insertions,
    skewed_insertions,
    uniform_insertions,
)
from repro.xmlmodel.generator import random_document

DOCUMENT_NODES = 400
UPDATES = 100


def document_factory():
    return random_document(DOCUMENT_NODES, seed=77)


WORKLOADS = {
    "bulk": None,
    "random": lambda ldoc: random_insertions(ldoc, UPDATES, seed=5),
    "uniform": lambda ldoc: uniform_insertions(ldoc, UPDATES),
    "skewed": lambda ldoc: skewed_insertions(ldoc, UPDATES),
}


def regenerate():
    table = {}
    for workload_name, workload in WORKLOADS.items():
        table[workload_name] = compare_schemes(
            document_factory, FIGURE7_ORDER, workload=workload
        )
    return table


def bench_storage_all_workloads(benchmark):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    bulk = table["bulk"]
    # Fixed containment labels are machine-word sized.
    assert bulk["prepost"].bits_per_label == 96
    # Under skew, the vector frontier label stays far below QED's.
    skewed = table["skewed"]
    assert skewed["vector"].max_label_bits < skewed["qed"].max_label_bits
    # CDQS never produces a larger frontier label than QED.
    assert skewed["cdqs"].max_label_bits <= skewed["qed"].max_label_bits


def bench_cdqs_flat_allocation_beats_qed(benchmark):
    """CDQS's compactness claim on sibling allocation, isolated.

    On a flat document (no nesting to compound early-sibling codes) the
    shortest-set allocation is strictly smaller than QED's recursive
    thirds.  On nested documents the comparison depends on which
    siblings carry the deep subtrees — which is why the headline
    workload table above reports both schemes rather than asserting a
    blanket ordering.
    """
    from repro.xmlmodel.builder import wide_tree

    def regenerate_flat():
        return compare_schemes(lambda: wide_tree(300), ["cdqs", "qed"])

    flat = benchmark.pedantic(regenerate_flat, rounds=1, iterations=1)
    assert flat["cdqs"].total_bits <= flat["qed"].total_bits


def bench_bulk_labelling_cost_qed(benchmark):
    document = document_factory()
    from repro.schemes.registry import make_scheme

    scheme = make_scheme("qed")
    labels = benchmark(scheme.label_tree, document)
    assert len(labels) == document.labeled_size()


def bench_bulk_labelling_cost_prepost(benchmark):
    document = document_factory()
    from repro.schemes.registry import make_scheme

    scheme = make_scheme("prepost")
    labels = benchmark(scheme.label_tree, document)
    assert len(labels) == document.labeled_size()


def main():
    table = regenerate()
    for workload_name, results in table.items():
        print(f"\nStorage after {workload_name} "
              f"({UPDATES if workload_name != 'bulk' else 0} updates)")
        print(f"  {'scheme':18s} {'bits/label':>10s} {'max label':>10s}")
        for name in FIGURE7_ORDER:
            summary: StorageSummary = results[name]
            print(f"  {name:18s} {summary.bits_per_label:10.1f} "
                  f"{summary.max_label_bits:10d}")


if __name__ == "__main__":
    main()
