"""Section 5.1 Compact Encoding: storage under the three update scenarios.

Measures total label storage for every Figure 7 scheme over the same
synthetic document, after bulk loading and after each of the frequent
random / frequent uniform / skewed workloads — the measurements behind
the Compact Encoding column.

A second section measures the pluggable storage backends themselves:
ingest, cold load after a fresh open, and point-query cost per engine
(``memory``, ``sqlite``, ``pagefile``), plus bytes at rest.  Set
``REPRO_BENCH_BACKEND`` (or ``repro bench run --backend NAME``) to
restrict the rows to one engine.
"""

import os
import tempfile
import time

from _common import bench_args
from repro.analysis.storage import StorageSummary, compare_schemes
from repro.schemes.registry import FIGURE7_ORDER
from repro.store import open_repository
from repro.updates.workloads import (
    random_insertions,
    skewed_insertions,
    uniform_insertions,
)
from repro.xmlmodel.generator import random_document
from repro.xmlmodel.xmark import XMarkGenerator

DOCUMENT_NODES = 400
QUICK_DOCUMENT_NODES = 150
UPDATES = 100
QUICK_UPDATES = 30
XMARK_SCALE = 1.0
QUICK_XMARK_SCALE = 0.3
BACKENDS = ["memory", "sqlite", "pagefile"]
#: The point query of the backend section: XMark's most numerous element.
POINT_QUERY_NAME = "item"


def document_factory(nodes=DOCUMENT_NODES):
    return random_document(nodes, seed=77)


def workloads(updates=UPDATES):
    return {
        "bulk": None,
        "random": lambda ldoc: random_insertions(ldoc, updates, seed=5),
        "uniform": lambda ldoc: uniform_insertions(ldoc, updates),
        "skewed": lambda ldoc: skewed_insertions(ldoc, updates),
    }


#: Full-size workloads, kept for the pytest entry points below.
WORKLOADS = workloads()


def regenerate(nodes=DOCUMENT_NODES, updates=UPDATES):
    table = {}
    for workload_name, workload in workloads(updates).items():
        table[workload_name] = compare_schemes(
            lambda: document_factory(nodes), FIGURE7_ORDER,
            workload=workload,
        )
    return table


def bench_storage_all_workloads(benchmark):
    table = benchmark.pedantic(regenerate, rounds=1, iterations=1)
    bulk = table["bulk"]
    # Fixed containment labels are machine-word sized.
    assert bulk["prepost"].bits_per_label == 96
    # Under skew, the vector frontier label stays far below QED's.
    skewed = table["skewed"]
    assert skewed["vector"].max_label_bits < skewed["qed"].max_label_bits
    # CDQS never produces a larger frontier label than QED.
    assert skewed["cdqs"].max_label_bits <= skewed["qed"].max_label_bits


def bench_cdqs_flat_allocation_beats_qed(benchmark):
    """CDQS's compactness claim on sibling allocation, isolated.

    On a flat document (no nesting to compound early-sibling codes) the
    shortest-set allocation is strictly smaller than QED's recursive
    thirds.  On nested documents the comparison depends on which
    siblings carry the deep subtrees — which is why the headline
    workload table above reports both schemes rather than asserting a
    blanket ordering.
    """
    from repro.xmlmodel.builder import wide_tree

    def regenerate_flat():
        return compare_schemes(lambda: wide_tree(300), ["cdqs", "qed"])

    flat = benchmark.pedantic(regenerate_flat, rounds=1, iterations=1)
    assert flat["cdqs"].total_bits <= flat["qed"].total_bits


def bench_bulk_labelling_cost_qed(benchmark):
    document = document_factory()
    from repro.schemes.registry import make_scheme

    scheme = make_scheme("qed")
    labels = benchmark(scheme.label_tree, document)
    assert len(labels) == document.labeled_size()


def bench_bulk_labelling_cost_prepost(benchmark):
    document = document_factory()
    from repro.schemes.registry import make_scheme

    scheme = make_scheme("prepost")
    labels = benchmark(scheme.label_tree, document)
    assert len(labels) == document.labeled_size()


def selected_backends():
    """The engines to measure; REPRO_BENCH_BACKEND narrows to one."""
    chosen = os.environ.get("REPRO_BENCH_BACKEND", "").strip()
    if chosen:
        return [name for name in BACKENDS if name == chosen]
    return list(BACKENDS)


def _backend_url(name, workdir):
    if name == "memory":
        return "memory://"
    if name == "sqlite":
        return f"sqlite:///{workdir}/bench.db"
    return f"pagefile:///{workdir}/bench.pages"


def backend_rows(scale=XMARK_SCALE, backends=None):
    """Ingest/cold-load/point-query cost per storage engine.

    One XMark corpus, the same for every engine.  ``cold_load``
    re-opens the store and materialises the document from rest;
    ``point_query`` re-opens and asks for every ``item`` element —
    the node-table engine answers without parsing the document, the
    others pay materialisation, and the rows make that gap visible.
    """
    corpus = XMarkGenerator(scale=scale, seed=77).generate()
    rows = []
    for backend_name in (backends or selected_backends()):
        with tempfile.TemporaryDirectory() as workdir:
            url = _backend_url(backend_name, workdir)

            started = time.perf_counter()
            repository = open_repository(url)
            repository.add("xmark", corpus, scheme="cdqs")
            ingest_s = time.perf_counter() - started
            stored_bytes = repository.backend.storage_bytes()
            if backend_name == "memory":
                # No disk state survives close: measure the live paths.
                matches = len(repository.point_query(
                    "xmark", POINT_QUERY_NAME
                ))
                cold_s = point_s = 0.0
            else:
                repository.close()

                started = time.perf_counter()
                with open_repository(url) as reopened:
                    reopened.get("xmark")
                cold_s = time.perf_counter() - started

                started = time.perf_counter()
                with open_repository(url) as reopened:
                    matches = len(reopened.point_query(
                        "xmark", POINT_QUERY_NAME
                    ))
                point_s = time.perf_counter() - started
            if backend_name == "memory":
                repository.close()
            rows.append({
                "backend": backend_name,
                "ingest_s": round(ingest_s, 4),
                "cold_load_s": round(cold_s, 4),
                "point_query_s": round(point_s, 4),
                "point_query_matches": matches,
                "storage_bytes": stored_bytes,
            })
    return rows


def bench_backend_point_query_beats_materialisation(benchmark):
    """The node table answers point queries without a full parse."""
    rows = benchmark.pedantic(
        lambda: backend_rows(scale=QUICK_XMARK_SCALE,
                             backends=["sqlite", "pagefile"]),
        rounds=1, iterations=1,
    )
    by_name = {row["backend"]: row for row in rows}
    assert by_name["sqlite"]["point_query_matches"] == (
        by_name["pagefile"]["point_query_matches"]
    )
    # SQLite's point query skips materialisation; the page file cannot.
    assert by_name["sqlite"]["point_query_s"] <= (
        by_name["pagefile"]["point_query_s"]
    )


def main(argv=None):
    args = bench_args(__doc__, argv)
    nodes = QUICK_DOCUMENT_NODES if args.quick else DOCUMENT_NODES
    updates = QUICK_UPDATES if args.quick else UPDATES
    table = regenerate(nodes, updates)
    rows = []
    for workload_name, results in table.items():
        print(f"\nStorage after {workload_name} "
              f"({updates if workload_name != 'bulk' else 0} updates)")
        print(f"  {'scheme':18s} {'bits/label':>10s} {'max label':>10s}")
        for name in FIGURE7_ORDER:
            summary: StorageSummary = results[name]
            print(f"  {name:18s} {summary.bits_per_label:10.1f} "
                  f"{summary.max_label_bits:10d}")
            rows.append({"workload": workload_name, "scheme": name,
                         "bits_per_label": round(summary.bits_per_label, 1),
                         "max_label_bits": summary.max_label_bits})

    scale = QUICK_XMARK_SCALE if args.quick else XMARK_SCALE
    engine_rows = backend_rows(scale)
    print(f"\nStorage backends (XMark scale {scale}, point query "
          f"'{POINT_QUERY_NAME}')")
    print(f"  {'backend':10s} {'ingest s':>9s} {'cold load s':>12s} "
          f"{'point query s':>14s} {'matches':>8s} {'bytes':>10s}")
    for row in engine_rows:
        print(f"  {row['backend']:10s} {row['ingest_s']:9.4f} "
              f"{row['cold_load_s']:12.4f} {row['point_query_s']:14.4f} "
              f"{row['point_query_matches']:8d} {row['storage_bytes']:10d}")
    rows.extend(engine_rows)
    return rows


if __name__ == "__main__":
    main()
